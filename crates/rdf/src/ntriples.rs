//! N-Triples parser and serializer (W3C N-Triples, the line-oriented
//! subset sufficient for Edutella-style metadata exchange).
//!
//! Supported per line: `<iri> | _:blank` subject, `<iri>` predicate,
//! `<iri> | _:blank | "literal"[^^<dt> | @lang]` object, terminating `.`.
//! `#` comments and blank lines are skipped. Escapes: `\" \\ \n \t \r
//! \uXXXX`.

use crate::model::{Iri, Node, RdfLiteral, Triple};
use std::fmt;

/// Parse errors with line numbers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NtError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for NtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N-Triples error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NtError {}

/// Parse a whole N-Triples document.
pub fn parse_ntriples(src: &str) -> Result<Vec<Triple>, NtError> {
    let mut out = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_line(line, line_no)?);
    }
    Ok(out)
}

/// Serialize triples as N-Triples text.
pub fn to_ntriples(triples: &[Triple]) -> String {
    let mut s = String::new();
    for t in triples {
        s.push_str(&t.to_string());
        s.push('\n');
    }
    s
}

struct Cursor<'a> {
    s: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: impl Into<String>) -> NtError {
        NtError {
            line: self.line,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.s[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with([' ', '\t']) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.rest().starts_with(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn take_until(&mut self, stop: char) -> Result<&'a str, NtError> {
        let rest = self.rest();
        match rest.find(stop) {
            Some(i) => {
                let out = &rest[..i];
                self.pos += i + stop.len_utf8();
                Ok(out)
            }
            None => Err(self.err(format!("missing `{stop}`"))),
        }
    }

    fn iri(&mut self) -> Result<Iri, NtError> {
        if !self.eat('<') {
            return Err(self.err("expected `<`"));
        }
        let body = self.take_until('>')?;
        if body.chars().any(|c| c.is_whitespace() || c == '<') {
            return Err(self.err("malformed IRI"));
        }
        Ok(Iri::new(body))
    }

    fn blank(&mut self) -> Result<Node, NtError> {
        // caller consumed nothing; expect `_:`
        if !self.rest().starts_with("_:") {
            return Err(self.err("expected `_:`"));
        }
        self.pos += 2;
        let rest = self.rest();
        let end = rest.find(|c: char| c.is_whitespace()).unwrap_or(rest.len());
        if end == 0 {
            return Err(self.err("empty blank node label"));
        }
        let label = &rest[..end];
        self.pos += end;
        Ok(Node::blank(label))
    }

    fn literal(&mut self) -> Result<Node, NtError> {
        if !self.eat('"') {
            return Err(self.err("expected `\"`"));
        }
        let mut lexical = String::new();
        loop {
            let rest = self.rest();
            let mut chars = rest.char_indices();
            match chars.next() {
                None => return Err(self.err("unterminated literal")),
                Some((_, '"')) => {
                    self.pos += 1;
                    break;
                }
                Some((_, '\\')) => {
                    let (_, esc) = chars.next().ok_or_else(|| self.err("dangling escape"))?;
                    let consumed = 1 + esc.len_utf8();
                    match esc {
                        'n' => lexical.push('\n'),
                        't' => lexical.push('\t'),
                        'r' => lexical.push('\r'),
                        '"' => lexical.push('"'),
                        '\\' => lexical.push('\\'),
                        'u' => {
                            let hex = rest
                                .get(2..6)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let c =
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?;
                            lexical.push(c);
                            self.pos += 2 + 4;
                            continue;
                        }
                        other => return Err(self.err(format!("unknown escape \\{other}"))),
                    }
                    self.pos += consumed;
                }
                Some((_, c)) => {
                    lexical.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        // Optional datatype or language tag.
        if self.rest().starts_with("^^") {
            self.pos += 2;
            let dt = self.iri()?;
            return Ok(Node::Literal(RdfLiteral::typed(lexical, dt)));
        }
        if self.eat('@') {
            let rest = self.rest();
            let end = rest.find(|c: char| c.is_whitespace()).unwrap_or(rest.len());
            if end == 0 {
                return Err(self.err("empty language tag"));
            }
            let tag = &rest[..end];
            self.pos += end;
            return Ok(Node::Literal(RdfLiteral::lang(lexical, tag)));
        }
        Ok(Node::Literal(RdfLiteral::plain(lexical)))
    }

    fn subject(&mut self) -> Result<Node, NtError> {
        if self.rest().starts_with('<') {
            Ok(Node::Iri(self.iri()?))
        } else if self.rest().starts_with("_:") {
            self.blank()
        } else {
            Err(self.err("subject must be an IRI or blank node"))
        }
    }

    fn object(&mut self) -> Result<Node, NtError> {
        if self.rest().starts_with('<') {
            Ok(Node::Iri(self.iri()?))
        } else if self.rest().starts_with("_:") {
            self.blank()
        } else if self.rest().starts_with('"') {
            self.literal()
        } else {
            Err(self.err("object must be an IRI, blank node or literal"))
        }
    }
}

fn parse_line(line: &str, line_no: usize) -> Result<Triple, NtError> {
    let mut c = Cursor {
        s: line,
        pos: 0,
        line: line_no,
    };
    let subject = c.subject()?;
    c.skip_ws();
    let predicate = c.iri()?;
    c.skip_ws();
    let object = c.object()?;
    c.skip_ws();
    if !c.eat('.') {
        return Err(c.err("expected terminating `.`"));
    }
    c.skip_ws();
    if !c.rest().is_empty() && !c.rest().starts_with('#') {
        return Err(c.err("trailing content after `.`"));
    }
    Ok(Triple::new(subject, predicate, object))
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"
# Course metadata, Edutella-style.
<http://elearn.example/courses/cs101> <http://purl.org/dc/terms/title> "Intro to CS" .
<http://elearn.example/courses/cs101> <http://elearn.example/terms#price> "0" .
<http://elearn.example/courses/cs411> <http://elearn.example/terms#price> "1000"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://elearn.example/courses/cs411> <http://purl.org/dc/terms/title> "Datenbanken"@de .
_:policy1 <http://elearn.example/terms#guards> <http://elearn.example/courses/cs411> .
"#;

    #[test]
    fn parses_mixed_document() {
        let triples = parse_ntriples(DOC).unwrap();
        assert_eq!(triples.len(), 5);
        assert_eq!(triples[0].object, Node::literal("Intro to CS"));
        assert!(matches!(&triples[4].subject, Node::Blank(b) if b == "policy1"));
        let lit = triples[2].object.as_literal().unwrap();
        assert_eq!(lit.as_int(), Some(1000));
        assert!(lit.datatype.is_some());
        let de = triples[3].object.as_literal().unwrap();
        assert_eq!(de.language.as_deref(), Some("de"));
    }

    #[test]
    fn roundtrips_through_serializer() {
        let triples = parse_ntriples(DOC).unwrap();
        let text = to_ntriples(&triples);
        let again = parse_ntriples(&text).unwrap();
        assert_eq!(triples, again);
    }

    #[test]
    fn escapes_roundtrip() {
        let src = r#"<http://e/s> <http://e/p> "line1\nline2 \"quoted\" tab\there" ."#;
        let t = parse_ntriples(src).unwrap();
        let lit = t[0].object.as_literal().unwrap();
        assert_eq!(lit.lexical, "line1\nline2 \"quoted\" tab\there");
        let again = parse_ntriples(&to_ntriples(&t)).unwrap();
        assert_eq!(t, again);
    }

    #[test]
    fn unicode_escape() {
        let src = r#"<http://e/s> <http://e/p> "café" ."#;
        let t = parse_ntriples(src).unwrap();
        assert_eq!(t[0].object.as_literal().unwrap().lexical, "café");
    }

    #[test]
    fn error_reporting_with_line_numbers() {
        let src = "<http://e/s> <http://e/p> \"ok\" .\n<http://e/s <http://e/p> \"bad\" .";
        let err = parse_ntriples(src).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("malformed IRI"), "{err}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_ntriples("just words .").is_err());
        assert!(parse_ntriples("<http://a> <http://b> .").is_err());
        assert!(parse_ntriples("<http://a> <http://b> \"x\"").is_err());
        assert!(parse_ntriples("<http://a> <http://b> \"x\" . extra").is_err());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let src = "\n# nothing\n\n<http://a> <http://b> <http://c> .\n";
        assert_eq!(parse_ntriples(src).unwrap().len(), 1);
    }

    #[test]
    fn literal_subject_rejected() {
        assert!(parse_ntriples("\"lit\" <http://p> <http://o> .").is_err());
    }
}
