//! The RDF data model: IRIs, literals, blank nodes, triples.
//!
//! Edutella peers "manage distributed resources described by RDF metadata"
//! (paper §1). This is the minimal model those descriptions need: graphs
//! as sets of triples, with typed/tagged literals, ready to be indexed by
//! [`crate::store::TripleStore`] and mapped into PeerTrust knowledge bases
//! by [`crate::mapping`].

use std::fmt;

/// An IRI (kept as interned text; no normalization beyond trimming the
/// angle brackets at parse time).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Iri(pub String);

impl Iri {
    pub fn new(s: impl Into<String>) -> Iri {
        Iri(s.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The local name: the part after the last `#` or `/`.
    pub fn local_name(&self) -> &str {
        let s = self.0.as_str();
        match s.rfind(['#', '/']) {
            Some(i) if i + 1 < s.len() => &s[i + 1..],
            _ => s,
        }
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

/// An RDF literal: lexical form plus optional datatype or language tag.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RdfLiteral {
    pub lexical: String,
    pub datatype: Option<Iri>,
    pub language: Option<String>,
}

impl RdfLiteral {
    pub fn plain(s: impl Into<String>) -> RdfLiteral {
        RdfLiteral {
            lexical: s.into(),
            datatype: None,
            language: None,
        }
    }

    pub fn typed(s: impl Into<String>, datatype: Iri) -> RdfLiteral {
        RdfLiteral {
            lexical: s.into(),
            datatype: Some(datatype),
            language: None,
        }
    }

    pub fn lang(s: impl Into<String>, tag: impl Into<String>) -> RdfLiteral {
        RdfLiteral {
            lexical: s.into(),
            datatype: None,
            language: Some(tag.into()),
        }
    }

    /// Integer value, when the literal is xsd:integer-typed or its lexical
    /// form parses as one.
    pub fn as_int(&self) -> Option<i64> {
        self.lexical.parse().ok()
    }
}

impl fmt::Display for RdfLiteral {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape(&self.lexical))?;
        if let Some(dt) = &self.datatype {
            write!(f, "^^{dt}")?;
        } else if let Some(tag) = &self.language {
            write!(f, "@{tag}")?;
        }
        Ok(())
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
        .replace('\t', "\\t")
        .replace('\r', "\\r")
}

/// A node in an RDF graph.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Node {
    Iri(Iri),
    Blank(String),
    Literal(RdfLiteral),
}

impl Node {
    pub fn iri(s: impl Into<String>) -> Node {
        Node::Iri(Iri::new(s))
    }

    pub fn blank(label: impl Into<String>) -> Node {
        Node::Blank(label.into())
    }

    pub fn literal(s: impl Into<String>) -> Node {
        Node::Literal(RdfLiteral::plain(s))
    }

    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Node::Iri(i) => Some(i),
            _ => None,
        }
    }

    pub fn as_literal(&self) -> Option<&RdfLiteral> {
        match self {
            Node::Literal(l) => Some(l),
            _ => None,
        }
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Iri(i) => write!(f, "{i}"),
            Node::Blank(b) => write!(f, "_:{b}"),
            Node::Literal(l) => write!(f, "{l}"),
        }
    }
}

/// One RDF statement.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Triple {
    pub subject: Node,
    pub predicate: Iri,
    pub object: Node,
}

impl Triple {
    pub fn new(subject: Node, predicate: Iri, object: Node) -> Triple {
        Triple {
            subject,
            predicate,
            object,
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_local_names() {
        assert_eq!(Iri::new("http://ex.org/terms#title").local_name(), "title");
        assert_eq!(
            Iri::new("http://ex.org/courses/cs101").local_name(),
            "cs101"
        );
        assert_eq!(Iri::new("noseparator").local_name(), "noseparator");
        assert_eq!(Iri::new("trailing/").local_name(), "trailing/");
    }

    #[test]
    fn literal_display_forms() {
        assert_eq!(RdfLiteral::plain("hi").to_string(), "\"hi\"");
        assert_eq!(
            RdfLiteral::typed("5", Iri::new("http://www.w3.org/2001/XMLSchema#integer"))
                .to_string(),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
        assert_eq!(RdfLiteral::lang("hola", "es").to_string(), "\"hola\"@es");
    }

    #[test]
    fn literal_escaping() {
        let l = RdfLiteral::plain("a\"b\\c\nd");
        assert_eq!(l.to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn literal_int_coercion() {
        assert_eq!(RdfLiteral::plain("1000").as_int(), Some(1000));
        assert_eq!(RdfLiteral::plain("x").as_int(), None);
    }

    #[test]
    fn triple_display() {
        let t = Triple::new(
            Node::iri("http://ex.org/cs101"),
            Iri::new("http://ex.org/terms#price"),
            Node::literal("1000"),
        );
        assert_eq!(
            t.to_string(),
            "<http://ex.org/cs101> <http://ex.org/terms#price> \"1000\" ."
        );
    }
}
