//! Mapping RDF metadata into PeerTrust knowledge bases.
//!
//! "PeerTrust 1.0 imports RDF metadata to represent policies for access to
//! resources" (paper §6). Two mappings are provided:
//!
//! * the **generic** mapping: every triple becomes a fact
//!   `triple("s", "p", "o")`, so rule bodies can query raw metadata;
//! * the **predicate** mapping: a triple
//!   `<...#price>(<...courses/cs411>, "1000")` becomes the binary fact
//!   `price(cs411, 1000)` — predicate IRIs map to predicate symbols via
//!   their local names, resource IRIs to atoms via theirs, and
//!   integer-looking literals to integers. This is what lets the §4.2
//!   policies (`price(Course, Price)`) run directly against imported
//!   metadata.
//!
//! Policy attachment: triples with the reserved predicate local name
//! `peertrustPolicy` carry a PeerTrust rule *as a literal* (the RDF-borne
//! policy of the prototype); [`import_metadata`] parses and loads them
//! alongside the mapped facts.

use crate::model::{Node, Triple};
use crate::store::TripleStore;
use peertrust_core::{KnowledgeBase, Literal, Rule, Term};
use peertrust_parser::parse_rule;

/// The reserved predicate local name carrying embedded PeerTrust rules.
pub const POLICY_PREDICATE: &str = "peertrustPolicy";

/// Map a node to a PeerTrust term: IRIs and blanks become atoms (local
/// name), literals become integers when they look like one, else strings.
pub fn node_to_term(node: &Node) -> Term {
    match node {
        Node::Iri(iri) => Term::atom(iri.local_name()),
        Node::Blank(label) => Term::atom(format!("_bnode_{label}").as_str()),
        Node::Literal(lit) => match lit.as_int() {
            Some(i) => Term::int(i),
            None => Term::str(lit.lexical.as_str()),
        },
    }
}

/// The generic triple fact `triple(s, p, o)`.
pub fn triple_fact(t: &Triple) -> Rule {
    Rule::fact(Literal::new(
        "triple",
        vec![
            node_to_term(&t.subject),
            Term::atom(t.predicate.local_name()),
            node_to_term(&t.object),
        ],
    ))
}

/// The predicate-mapped binary fact `p(s, o)`.
pub fn predicate_fact(t: &Triple) -> Rule {
    Rule::fact(Literal::new(
        t.predicate.local_name(),
        vec![node_to_term(&t.subject), node_to_term(&t.object)],
    ))
}

/// Errors during metadata import.
#[derive(Debug)]
pub enum ImportError {
    /// An embedded policy literal failed to parse.
    BadEmbeddedPolicy {
        subject: String,
        error: peertrust_parser::ParseError,
    },
    /// A policy triple's object is not a literal.
    NonLiteralPolicy { subject: String },
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::BadEmbeddedPolicy { subject, error } => {
                write!(f, "bad embedded policy on {subject}: {error}")
            }
            ImportError::NonLiteralPolicy { subject } => {
                write!(f, "policy annotation on {subject} must be a literal")
            }
        }
    }
}

impl std::error::Error for ImportError {}

/// Import a metadata store into a knowledge base:
///
/// * every triple as `triple/3` (generic mapping);
/// * every non-policy triple as `p/2` (predicate mapping);
/// * every `peertrustPolicy` literal parsed and loaded as a rule.
///
/// Returns the number of rules added.
pub fn import_metadata(store: &TripleStore, kb: &mut KnowledgeBase) -> Result<usize, ImportError> {
    let mut added = 0;
    for t in store.iter() {
        if t.predicate.local_name() == POLICY_PREDICATE {
            let Some(lit) = t.object.as_literal() else {
                return Err(ImportError::NonLiteralPolicy {
                    subject: t.subject.to_string(),
                });
            };
            let rule =
                parse_rule(&lit.lexical).map_err(|error| ImportError::BadEmbeddedPolicy {
                    subject: t.subject.to_string(),
                    error,
                })?;
            kb.add_local(rule);
            added += 1;
            continue;
        }
        kb.add_local(triple_fact(t));
        kb.add_local(predicate_fact(t));
        added += 2;
    }
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntriples::parse_ntriples;
    use peertrust_core::PeerId;
    use peertrust_engine::Solver;
    use peertrust_parser::parse_goals;

    const CATALOG: &str = r#"
<http://elearn.example/courses/cs101> <http://elearn.example/terms#freeCourse> "true" .
<http://elearn.example/courses/cs411> <http://elearn.example/terms#price> "1000"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://elearn.example/courses/ml500> <http://elearn.example/terms#price> "2500" .
<http://elearn.example/courses/cs411> <http://purl.org/dc/terms/title> "Databases" .
<http://elearn.example/catalog> <http://elearn.example/terms#peertrustPolicy> "affordable(C) <- price(C, P), P < 2000." .
"#;

    fn imported_kb() -> KnowledgeBase {
        let store: TripleStore = parse_ntriples(CATALOG).unwrap().into_iter().collect();
        let mut kb = KnowledgeBase::new();
        let added = import_metadata(&store, &mut kb).unwrap();
        assert_eq!(added, 4 * 2 + 1);
        kb
    }

    #[test]
    fn predicate_mapping_feeds_paper_policies() {
        let kb = imported_kb();
        // The §4.2 `price(Course, Price)` goal runs directly.
        let mut solver = Solver::new(&kb, PeerId::new("self"));
        let sols = solver.solve(&parse_goals("price(cs411, P)").unwrap());
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].subst.apply(&Term::var("P")), Term::int(1000));
    }

    #[test]
    fn generic_mapping_exposes_raw_triples() {
        let kb = imported_kb();
        let mut solver = Solver::new(&kb, PeerId::new("self"));
        let sols = solver.solve(&parse_goals("triple(cs411, title, T)").unwrap());
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].subst.apply(&Term::var("T")), Term::str("Databases"));
    }

    #[test]
    fn embedded_policy_rule_is_loaded_and_runs() {
        let kb = imported_kb();
        let mut solver = Solver::new(&kb, PeerId::new("self"));
        let sols = solver.solve(&parse_goals("affordable(C)").unwrap());
        let courses: Vec<String> = sols
            .iter()
            .map(|s| s.subst.apply(&Term::var("C")).to_string())
            .collect();
        assert_eq!(courses, vec!["cs411"], "ml500 at 2500 is filtered out");
    }

    #[test]
    fn bad_embedded_policy_reports_subject() {
        let src = r#"<http://e/x> <http://e/terms#peertrustPolicy> "broken(" ."#;
        let store: TripleStore = parse_ntriples(src).unwrap().into_iter().collect();
        let mut kb = KnowledgeBase::new();
        let err = import_metadata(&store, &mut kb).unwrap_err();
        assert!(matches!(err, ImportError::BadEmbeddedPolicy { .. }));
        assert!(err.to_string().contains("http://e/x"));
    }

    #[test]
    fn non_literal_policy_rejected() {
        let src = r#"<http://e/x> <http://e/terms#peertrustPolicy> <http://e/other> ."#;
        let store: TripleStore = parse_ntriples(src).unwrap().into_iter().collect();
        let mut kb = KnowledgeBase::new();
        assert!(matches!(
            import_metadata(&store, &mut kb),
            Err(ImportError::NonLiteralPolicy { .. })
        ));
    }

    #[test]
    fn node_term_mapping_rules() {
        assert_eq!(
            node_to_term(&Node::iri("http://e/courses/cs101")),
            Term::atom("cs101")
        );
        assert_eq!(node_to_term(&Node::literal("42")), Term::int(42));
        assert_eq!(node_to_term(&Node::literal("hello")), Term::str("hello"));
        assert_eq!(node_to_term(&Node::blank("b0")), Term::atom("_bnode_b0"));
    }
}
