//! # peertrust-rdf
//!
//! The Edutella-style RDF metadata substrate (paper §1, §6): peers
//! "manage distributed resources described by RDF metadata", and the
//! PeerTrust 1.0 prototype "imports RDF metadata to represent policies
//! for access to resources".
//!
//! * [`model`] — IRIs, literals (typed / language-tagged), blank nodes,
//!   triples;
//! * [`ntriples`] — a from-scratch N-Triples parser and serializer;
//! * [`store`] — an indexed triple store with S/P/O pattern queries;
//! * [`mapping`] — triples into PeerTrust knowledge bases: a generic
//!   `triple/3` view, a predicate-mapped `p/2` view feeding the paper's
//!   policies (`price(Course, Price)`), and embedded `peertrustPolicy`
//!   rule literals.

pub mod mapping;
pub mod model;
pub mod ntriples;
pub mod store;

pub use mapping::{
    import_metadata, node_to_term, predicate_fact, triple_fact, ImportError, POLICY_PREDICATE,
};
pub use model::{Iri, Node, RdfLiteral, Triple};
pub use ntriples::{parse_ntriples, to_ntriples, NtError};
pub use store::{Pat, TripleStore};
