//! # peertrust-engine
//!
//! Inference engines for PeerTrust distributed logic programs — the Rust
//! replacement for the MINERVA Prolog meta-interpreters of the 2004
//! prototype (paper §6).
//!
//! * [`sld`] — backward-chaining SLD resolution with certified [`Proof`]
//!   trees, termination guards (depth bound, step budget, ancestor variant
//!   loop check), and a [`RemoteHook`] through which the negotiation layer
//!   routes delegated goals (`lit @ OtherPeer`) over the network.
//! * [`forward`] — bottom-up saturation implementing the local part of the
//!   paper's §3.2 forward-chaining fixpoint semantics; used by the eager
//!   negotiation strategy and for differential testing against SLD.
//! * [`builtins`] — the comparison predicates policies use
//!   (`Price < 2000`, `Requester = Self`).
//! * [`table`] — SLD answer tabling for the definite-Horn fragment,
//!   enabled via [`EngineConfig::tabling`]; memoizes answers (with their
//!   proofs) per goal variant so negotiations stop re-deriving the same
//!   subgoals.
//! * [`mod@reference`] — the pre-trail clone-per-branch interpreter, kept as a
//!   differential-testing oracle and in-process benchmark baseline for the
//!   trail-based hot path.
//! * [`compile`] — the WAM-lite policy compiler: a one-shot pass from a
//!   [`peertrust_core::KnowledgeBase`] to a flat bytecode KB
//!   (switch-on-constant clause dispatch, get-instruction head matching,
//!   frame-based standardize-apart), consulted by the solver when
//!   [`EngineConfig::compiled`] is on or a [`CompiledKb`] is attached, and
//!   guarded by a KB fingerprint so a stale artifact is never consulted.

pub mod builtins;
pub mod compile;
pub mod explain;
pub mod forward;
pub mod reference;
pub mod sld;
pub mod table;

pub use builtins::{eval_builtin, eval_builtin_in, BuiltinOutcome, BuiltinOutcomeIn};
pub use compile::{CompiledFit, CompiledKb, CompiledSolver, HeadInstr};
pub use explain::{explain, explain_with_rules, proof_summary};
pub use forward::{saturate, ForwardConfig, Saturation};
pub use reference::RefSolver;
pub use sld::{
    canonical_answer_set, canonicalize, is_variant, EngineConfig, NoRemote, Proof, ProofStep,
    RemoteFallback, RemoteHook, SharedTable, Solution, Solver, Stats, TableHandle,
};
pub use table::{AnswerTable, ConcurrentTable, Disposition, Probe, TableStats, TabledAnswer};
