//! Human-readable proof explanations.
//!
//! The paper's vision is a "certified proof that a party is entitled to
//! access a particular resource" (§6). [`explain`] renders a [`Proof`]
//! tree as an indented justification a policy author can audit, and
//! [`explain_with_rules`] inlines the rule text from a knowledge base:
//!
//! ```text
//! discountEnroll(spanish101, "Alice")
//! └─ by rule: discountEnroll(Course, Party) <- eligibleForDiscount(Party, Course).
//!    └─ eligibleForDiscount("Alice", spanish101)
//!       └─ by rule: eligibleForDiscount(X, Course) <- preferred(X) @ "ELENA".
//!          └─ preferred("Alice") @ "ELENA"
//!             ...
//! ```

use crate::sld::{Proof, ProofStep};
use peertrust_core::KnowledgeBase;
use std::fmt::Write;

/// Render a proof tree without rule bodies (goal + step kinds only).
pub fn explain(proof: &Proof) -> String {
    let mut out = String::new();
    render(proof, None, "", true, &mut out);
    out
}

/// Render a proof tree, inlining each applied rule's text from `kb`.
pub fn explain_with_rules(proof: &Proof, kb: &KnowledgeBase) -> String {
    let mut out = String::new();
    render(proof, Some(kb), "", true, &mut out);
    out
}

fn render(proof: &Proof, kb: Option<&KnowledgeBase>, prefix: &str, root: bool, out: &mut String) {
    if root {
        let _ = writeln!(out, "{}", proof.goal);
    }
    let step_desc = match &proof.step {
        ProofStep::Rule(id) => match kb.and_then(|kb| kb.get(*id)) {
            Some(stored) => format!("by rule: {}", stored.rule),
            None => format!("by rule #{}", id.0),
        },
        ProofStep::Builtin => "by builtin evaluation".to_string(),
        ProofStep::SelfAuthority => "by self-authority (lit @ Self = lit)".to_string(),
        ProofStep::Remote(peer) => format!("answered remotely by {peer}"),
        ProofStep::Negation => "by negation as failure (goal refuted locally)".to_string(),
    };
    let _ = writeln!(out, "{prefix}└─ {step_desc}");
    let child_prefix = format!("{prefix}   ");
    for child in &proof.children {
        let _ = writeln!(out, "{child_prefix}└─ {}", child.goal);
        render(child, kb, &format!("{child_prefix}   "), false, out);
    }
}

/// One-line summary: which rules, builtins and remote peers the proof
/// rests on.
pub fn proof_summary(proof: &Proof) -> String {
    let rules = proof.used_rules().len();
    let remotes = proof.remote_dependencies();
    let mut s = format!(
        "{} established via {} rule application(s), {} node(s)",
        proof.goal,
        rules,
        proof.size()
    );
    if !remotes.is_empty() {
        let peers: Vec<String> = remotes
            .iter()
            .map(|(p, _)| p.to_string())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let _ = write!(s, "; remote answers from {}", peers.join(", "));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sld::Solver;
    use peertrust_core::PeerId;
    use peertrust_parser::{parse_goals, parse_program};

    fn prove(kb_src: &str, query: &str) -> (KnowledgeBase, Proof) {
        let kb: KnowledgeBase = parse_program(kb_src).unwrap().into_iter().collect();
        let mut solver = Solver::new(&kb, PeerId::new("self"));
        let sols = solver.solve(&parse_goals(query).unwrap());
        let proof = sols[0].proofs[0].clone();
        (kb, proof)
    }

    #[test]
    fn explains_rule_chain() {
        let (kb, proof) = prove(
            r#"
            a(X) <- b(X).
            b(1).
            "#,
            "a(W)",
        );
        let text = explain_with_rules(&proof, &kb);
        assert!(text.starts_with("a(1)"), "{text}");
        assert!(text.contains("by rule: a(X) <- b(X)."), "{text}");
        assert!(text.contains("b(1)"), "{text}");
    }

    #[test]
    fn explains_builtins() {
        let (_kb, proof) = prove("ok(X) <- p(X), X < 5. p(3).", "ok(W)");
        let text = explain(&proof);
        assert!(text.contains("by builtin evaluation"), "{text}");
    }

    #[test]
    fn summary_counts_rules() {
        let (_kb, proof) = prove("a <- b, c. b. c.", "a");
        let s = proof_summary(&proof);
        // Proof tree: a (rule) with children b (fact) and c (fact) — three
        // rule applications across three nodes.
        assert!(s.contains("3 rule application(s)"), "{s}");
        assert!(s.contains("3 node(s)"), "{s}");
    }

    #[test]
    fn indentation_nests_with_depth() {
        let (kb, proof) = prove("a <- b. b <- c. c.", "a");
        let text = explain_with_rules(&proof, &kb);
        // Three levels of rule application, increasingly indented.
        let lines: Vec<&str> = text.lines().collect();
        let indents: Vec<usize> = lines
            .iter()
            .filter(|l| l.contains("by rule"))
            .map(|l| l.len() - l.trim_start().len())
            .collect();
        assert_eq!(indents.len(), 3);
        assert!(indents.windows(2).all(|w| w[0] < w[1]), "{indents:?}");
    }
}
