//! Forward-chaining (bottom-up) evaluation.
//!
//! Paper §3.2 defines the meaning of a PeerTrust program by "a forward
//! chaining nondeterministic fixpoint computation" in which peers apply
//! rules, send and receive statements. This module implements the *local*
//! rule-application part of that fixpoint: [`saturate`] computes every
//! ground literal derivable from a knowledge base (contexts are release
//! policies — they control disclosure, not derivation — so they are
//! ignored here; the negotiation layer enforces them at send time).
//!
//! Uses are (a) differential testing against the SLD engine — a ground
//! literal is forward-derivable iff SLD proves it; (b) the eager
//! negotiation strategy, which repeatedly saturates and then discloses
//! every releasable derived statement; (c) the §3.2 semantics tests.
//!
//! The implementation is semi-naive: each round only considers rule
//! instantiations that use at least one fact discovered in the previous
//! round.

use crate::builtins::{eval_builtin_in, BuiltinOutcomeIn};
use peertrust_core::{unify_literals_in, Bindings, KnowledgeBase, Literal, PeerId};
use std::collections::HashSet;

/// Limits for saturation (policy KBs are small; these are generous).
#[derive(Clone, Copy, Debug)]
pub struct ForwardConfig {
    /// Maximum number of derived facts.
    pub max_facts: usize,
    /// Maximum fixpoint rounds.
    pub max_rounds: usize,
}

impl Default for ForwardConfig {
    fn default() -> Self {
        ForwardConfig {
            max_facts: 100_000,
            max_rounds: 10_000,
        }
    }
}

/// The result of saturation.
#[derive(Clone, Debug)]
pub struct Saturation {
    /// All derivable ground literals (KB ground facts included), in
    /// derivation order.
    pub facts: Vec<Literal>,
    /// Number of fixpoint rounds executed.
    pub rounds: usize,
    /// True if a limit stopped saturation before the fixpoint.
    pub truncated: bool,
}

impl Saturation {
    /// Is `lit` among the derived facts?
    pub fn contains(&self, lit: &Literal) -> bool {
        self.facts.contains(lit)
    }
}

/// Compute all ground literals derivable from `kb` at peer `self_id`.
///
/// Self-authority equivalence is applied: a derived `lit @ ... @ self_id`
/// also yields `lit @ ...`, and conversely deriving `lit` makes
/// `lit @ self_id` available for rule bodies that ask for it explicitly.
pub fn saturate(kb: &KnowledgeBase, self_id: PeerId, config: ForwardConfig) -> Saturation {
    let mut facts: Vec<Literal> = Vec::new();
    let mut seen: HashSet<Literal> = HashSet::new();

    let add = |lit: Literal, facts: &mut Vec<Literal>, seen: &mut HashSet<Literal>| -> bool {
        if !lit.is_ground() {
            return false;
        }
        let mut added = false;
        // Self-authority closure both ways.
        let mut forms = vec![lit.clone()];
        if lit.eval_peer() == Some(self_id) {
            forms.push(lit.strip_outer_authority());
        } else {
            forms.push(lit.clone().at(peertrust_core::Term::peer(self_id)));
        }
        for f in forms {
            if seen.insert(f.clone()) {
                facts.push(f);
                added = true;
            }
        }
        added
    };

    // Seed with ground facts.
    for sr in kb.iter() {
        if sr.rule.is_fact() {
            add(sr.rule.head.clone(), &mut facts, &mut seen);
        }
    }

    let mut rounds = 0;
    let mut truncated = false;
    // Standardize-apart counter: every rule instantiation gets per-variable
    // unique versions so the trail store's dense slot path applies.
    let mut rename_counter: u32 = 0;
    // `frontier_start`: facts added in the previous round start here.
    let mut frontier_start = 0;
    loop {
        rounds += 1;
        if rounds > config.max_rounds {
            truncated = true;
            break;
        }
        let frontier_end = facts.len();
        let mut new_any = false;

        for sr in kb.iter() {
            let rule = &sr.rule;
            if rule.is_fact() {
                continue;
            }
            // Negation as failure needs stratified evaluation, which the
            // round-based fixpoint does not implement; such rules are
            // skipped here (the SLD engine handles them) and the eager
            // strategy consequently treats them as underivable.
            if rule.body.iter().any(|b| b.pred.as_str() == "not") {
                continue;
            }
            // Semi-naive: require at least one body literal matched against
            // the frontier (facts[frontier_start..frontier_end]).
            let base = rename_counter;
            let renamed = rule.rename_apart_indexed(&mut rename_counter);
            let n = renamed.body.len();
            // A body consisting solely of builtins has no frontier literal;
            // evaluate it once, in the first round (pivot = usize::MAX
            // disables the frontier requirement).
            if renamed.body.iter().all(Literal::is_builtin) {
                if rounds == 1 {
                    let mut derived: Vec<Literal> = Vec::new();
                    let mut bs = Bindings::new(base);
                    match_body(
                        &renamed.body,
                        0,
                        usize::MAX,
                        &mut bs,
                        &facts,
                        frontier_start,
                        frontier_end,
                        &renamed.head,
                        &mut derived,
                    );
                    for d in derived {
                        if add(d, &mut facts, &mut seen) {
                            new_any = true;
                        }
                    }
                }
                continue;
            }
            // For each choice of which body position uses the frontier:
            for pivot in 0..n {
                let mut derived: Vec<Literal> = Vec::new();
                let mut bs = Bindings::new(base);
                match_body(
                    &renamed.body,
                    0,
                    pivot,
                    &mut bs,
                    &facts,
                    frontier_start,
                    frontier_end,
                    &renamed.head,
                    &mut derived,
                );
                for d in derived {
                    if facts.len() >= config.max_facts {
                        truncated = true;
                        break;
                    }
                    if add(d, &mut facts, &mut seen) {
                        new_any = true;
                    }
                }
            }
        }

        frontier_start = frontier_end;
        if !new_any || truncated {
            break;
        }
    }

    Saturation {
        facts,
        rounds,
        truncated,
    }
}

/// Recursively match `body[i..]` against the fact store; position `pivot`
/// must match inside the frontier window, others anywhere before
/// `frontier_end` plus facts derived this very round are excluded (standard
/// round-based semantics — they'll be picked up next round).
#[allow(clippy::too_many_arguments)]
fn match_body(
    body: &[Literal],
    i: usize,
    pivot: usize,
    bs: &mut Bindings,
    facts: &[Literal],
    frontier_start: usize,
    frontier_end: usize,
    head: &Literal,
    out: &mut Vec<Literal>,
) {
    if i == body.len() {
        let derived = bs.apply_literal(head);
        if derived.is_ground() {
            out.push(derived);
        }
        return;
    }
    let goal = bs.apply_literal(&body[i]);
    if goal.is_builtin() {
        // Builtins are not frontier-eligible; if this position was the
        // pivot the instantiation is counted by another pivot choice, so
        // only proceed when pivot != i.
        if pivot == i {
            return;
        }
        let cp = bs.checkpoint();
        if eval_builtin_in(&goal, bs) == BuiltinOutcomeIn::True {
            match_body(
                body,
                i + 1,
                pivot,
                bs,
                facts,
                frontier_start,
                frontier_end,
                head,
                out,
            );
        }
        bs.rollback(cp);
        return;
    }
    let (lo, hi) = if i == pivot {
        (frontier_start, frontier_end)
    } else {
        (0, frontier_end)
    };
    for fact in &facts[lo..hi] {
        let cp = bs.checkpoint();
        if unify_literals_in(&goal, fact, bs) {
            match_body(
                body,
                i + 1,
                pivot,
                bs,
                facts,
                frontier_start,
                frontier_end,
                head,
                out,
            );
        }
        bs.rollback(cp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_parser::{parse_literal, parse_program};

    fn sat(src: &str) -> Saturation {
        let kb: KnowledgeBase = parse_program(src).unwrap().into_iter().collect();
        saturate(&kb, PeerId::new("self"), ForwardConfig::default())
    }

    #[test]
    fn facts_are_in_the_fixpoint() {
        let s = sat("a(1). b(2).");
        assert!(s.contains(&parse_literal("a(1)").unwrap()));
        assert!(s.contains(&parse_literal("b(2)").unwrap()));
    }

    #[test]
    fn simple_rule_application() {
        let s = sat("q(X) <- p(X). p(1). p(2).");
        assert!(s.contains(&parse_literal("q(1)").unwrap()));
        assert!(s.contains(&parse_literal("q(2)").unwrap()));
    }

    #[test]
    fn transitive_closure_saturates() {
        let s = sat(r#"
            reach(X, Y) <- edge(X, Y).
            reach(X, Z) <- edge(X, Y), reach(Y, Z).
            edge(1, 2). edge(2, 3). edge(3, 1).
            "#);
        // Cyclic graph: all 9 pairs reachable.
        for a in 1..=3 {
            for b in 1..=3 {
                let lit = parse_literal(&format!("reach({a}, {b})")).unwrap();
                assert!(s.contains(&lit), "missing reach({a},{b})");
            }
        }
        assert!(!s.truncated);
    }

    #[test]
    fn builtins_filter_derivations() {
        let s = sat("cheap(C) <- price(C, P), P < 2000. price(a, 1000). price(b, 3000).");
        assert!(s.contains(&parse_literal("cheap(a)").unwrap()));
        assert!(!s.contains(&parse_literal("cheap(b)").unwrap()));
    }

    #[test]
    fn non_ground_heads_are_skipped() {
        // Unsafe rule: head variable Y not bound by body.
        let s = sat("bad(X, Y) <- p(X). p(1).");
        assert_eq!(
            s.facts.iter().filter(|f| f.pred.as_str() == "bad").count(),
            0
        );
    }

    #[test]
    fn self_authority_closure() {
        // Deriving lit also derives lit @ "self" and vice versa.
        let s = sat(r#"p(1) @ "self". q(X) <- p(X)."#);
        assert!(s.contains(&parse_literal("p(1)").unwrap()));
        assert!(s.contains(&parse_literal("q(1)").unwrap()));
    }

    #[test]
    fn authority_chains_respected() {
        let s = sat(r#"
            student("Alice") @ "UIUC".
            preferred(X) <- student(X) @ "UIUC".
            "#);
        assert!(s.contains(&parse_literal(r#"preferred("Alice")"#).unwrap()));
        // No chainless student fact was invented.
        assert!(!s.contains(&parse_literal(r#"student("Alice")"#).unwrap()));
    }

    #[test]
    fn max_facts_truncates() {
        let kb: KnowledgeBase = parse_program("n(X) <- n(Y), Y = X. n(0).")
            .unwrap()
            .into_iter()
            .collect();
        // Y = X generates nothing new (same fact), so this actually
        // saturates quickly; use a count-up rule instead via compound terms.
        let kb2: KnowledgeBase = parse_program("n(s(X)) <- n(X). n(z).")
            .unwrap()
            .into_iter()
            .collect();
        let s = saturate(
            &kb2,
            PeerId::new("self"),
            ForwardConfig {
                max_facts: 50,
                max_rounds: 10_000,
            },
        );
        assert!(s.truncated);
        assert!(s.facts.len() <= 52); // closure forms may slightly overshoot
        drop(kb);
    }

    #[test]
    fn max_rounds_truncates() {
        let kb: KnowledgeBase = parse_program("n(s(X)) <- n(X). n(z).")
            .unwrap()
            .into_iter()
            .collect();
        let s = saturate(
            &kb,
            PeerId::new("self"),
            ForwardConfig {
                max_facts: 1_000_000,
                max_rounds: 5,
            },
        );
        assert!(s.truncated);
        assert_eq!(s.rounds, 6);
    }

    #[test]
    fn empty_kb_saturates_to_nothing() {
        let s = sat("");
        assert!(s.facts.is_empty());
        assert!(!s.truncated);
    }
}
