//! SLD answer tabling (memoization) for the definite-Horn fragment.
//!
//! Negotiations re-derive the same subgoals over and over: the §4.1/§4.2
//! scenarios evaluate identical `lit @ Authority` bodies on every
//! iteration, and licensing scans re-prove the same context goals per
//! candidate rule. For definite programs memoization is sound — a derived
//! answer stays derivable because knowledge bases only *grow* during a
//! negotiation — so the solver can keep an [`AnswerTable`]: answers keyed
//! by the *canonical form* (variant class) of the goal, each paired with
//! the proof that established it.
//!
//! The completion policy is deliberately simple (no full SLG/WAM
//! machinery):
//!
//! * a goal variant is evaluated **once**, by an isolated sub-derivation
//!   inside the same solver (sharing hook, step budget, and rename
//!   counter);
//! * while that evaluation is open the variant sits in an *in-progress*
//!   set; re-occurrences inside it fall back to plain SLD resolution, so
//!   cyclic programs terminate exactly as they do untabled (the ancestor
//!   variant check still prunes loops);
//! * an evaluation that was cut short — answer cap hit, step budget
//!   exhausted, depth cutoff observed — is recorded as [`Disposition::Incomplete`];
//!   incomplete variants are never reused and never re-evaluated as
//!   tables (each occurrence resolves inline), preserving the untabled
//!   semantics under resource bounds.
//!
//! Only authority-free goals are tabled. A goal with an authority chain
//! may route to another peer, and remote answers belong to the
//! negotiation layer's remote-answer cache
//! (`peertrust_negotiation::RemoteAnswerCache`) with its TTL and
//! invalidation story, not to this per-solver table. (Remote answers that
//! back a *local* rule application are still captured transparently in
//! the stored proof.)

use crate::sld::Proof;
use parking_lot::RwLock;
use peertrust_core::Literal;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// One memoized answer: the answer instance of the tabled goal plus the
/// proof tree that established it.
#[derive(Clone, Debug)]
pub struct TabledAnswer {
    pub answer: Literal,
    pub proof: Proof,
    /// Whether the answer or its proof mention any variable — computed
    /// once at completion time so the solver's per-reuse
    /// standardize-apart can skip the full tree walk for the (common)
    /// ground case: ground answers rename to themselves.
    needs_rename: bool,
}

impl TabledAnswer {
    /// Record an answer, precomputing whether reuse must rename it apart.
    pub fn new(answer: Literal, proof: Proof) -> TabledAnswer {
        let mut vars = Vec::new();
        answer.collect_vars(&mut vars);
        if vars.is_empty() {
            proof_has_vars(&proof, &mut vars);
        }
        TabledAnswer {
            answer,
            proof,
            needs_rename: !vars.is_empty(),
        }
    }

    /// Does reuse need to standardize this answer apart? `false` means
    /// the answer and proof are ground — clone (shallow) and go.
    pub fn needs_rename(&self) -> bool {
        self.needs_rename
    }
}

fn proof_has_vars(p: &Proof, vars: &mut Vec<peertrust_core::Var>) {
    p.goal.collect_vars(vars);
    if !vars.is_empty() {
        return;
    }
    for c in &p.children {
        proof_has_vars(c, vars);
        if !vars.is_empty() {
            return;
        }
    }
}

/// How a variant's evaluation ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Disposition {
    /// The sub-derivation ran to exhaustion: the answer list is the
    /// complete SLD answer set for the variant and may be reused.
    Complete,
    /// The sub-derivation was cut short by a resource bound; the variant
    /// is resolved inline on every occurrence.
    Incomplete,
}

struct Entry {
    disposition: Disposition,
    answers: Vec<TabledAnswer>,
}

/// Table usage counters (flushed into the telemetry registry by the
/// solver).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct TableStats {
    /// Goal occurrences answered from a completed table entry.
    pub hits: u64,
    /// Goal occurrences that triggered a fresh variant evaluation.
    pub misses: u64,
    /// Answers inserted into the table.
    pub inserts: u64,
    /// Variant evaluations recorded incomplete (resource bound hit).
    pub incomplete: u64,
    /// Occurrences that fell back to inline resolution because their
    /// variant was in progress (cycle) or incomplete.
    pub inline_fallbacks: u64,
}

/// The per-solver (optionally shared) answer table.
#[derive(Default)]
pub struct AnswerTable {
    entries: HashMap<Literal, Entry>,
    in_progress: HashSet<Literal>,
    stats: TableStats,
}

impl AnswerTable {
    pub fn new() -> AnswerTable {
        AnswerTable::default()
    }

    /// Number of variants with a recorded entry.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total answers stored across all complete entries.
    pub fn answer_count(&self) -> usize {
        self.entries.values().map(|e| e.answers.len()).sum()
    }

    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Is this variant currently being evaluated (cycle guard)?
    pub fn in_progress(&self, canonical: &Literal) -> bool {
        self.in_progress.contains(canonical)
    }

    /// Mark a variant as under evaluation.
    pub fn begin(&mut self, canonical: Literal) {
        self.stats.misses += 1;
        self.in_progress.insert(canonical);
    }

    /// Record the outcome of a variant evaluation and release the
    /// in-progress mark.
    pub fn complete(
        &mut self,
        canonical: Literal,
        disposition: Disposition,
        answers: Vec<TabledAnswer>,
    ) {
        self.in_progress.remove(&canonical);
        if disposition == Disposition::Incomplete {
            self.stats.incomplete += 1;
        }
        self.stats.inserts += answers.len() as u64;
        self.entries.insert(
            canonical,
            Entry {
                disposition,
                answers,
            },
        );
    }

    /// Abort a variant evaluation without recording anything (used when
    /// the solver must unwind early, e.g. on a stop signal).
    pub fn abort(&mut self, canonical: &Literal) {
        self.in_progress.remove(canonical);
    }

    /// The disposition recorded for a variant, if any.
    pub fn disposition(&self, canonical: &Literal) -> Option<Disposition> {
        self.entries.get(canonical).map(|e| e.disposition)
    }

    /// Completed answers for a variant; `None` unless the entry exists
    /// and is complete. Records a hit.
    pub fn lookup(&mut self, canonical: &Literal) -> Option<&[TabledAnswer]> {
        match self.entries.get(canonical) {
            Some(e) if e.disposition == Disposition::Complete => {
                self.stats.hits += 1;
                Some(&e.answers)
            }
            _ => None,
        }
    }

    /// Record one inline fallback (in-progress or incomplete variant).
    pub fn note_inline_fallback(&mut self) {
        self.stats.inline_fallbacks += 1;
    }

    /// Iterate over every recorded variant with its disposition and
    /// answers, in no particular order. Read-only (records no hits);
    /// used by the compiled-vs-interpreted differential tests to compare
    /// whole table contents.
    pub fn entries(&self) -> impl Iterator<Item = (&Literal, Disposition, &[TabledAnswer])> {
        self.entries
            .iter()
            .map(|(k, e)| (k, e.disposition, e.answers.as_slice()))
    }

    /// Drop every entry (keeps the stats).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.in_progress.clear();
    }
}

/// What a table found for a goal variant (see [`ConcurrentTable::probe`]).
#[derive(Clone, Debug)]
pub enum Probe {
    /// A completed entry: resolve the goal against these answers.
    Reuse(Vec<TabledAnswer>),
    /// In progress (cycle) or recorded incomplete: resolve inline. The
    /// inline fallback has already been counted.
    Inline,
    /// Never evaluated: the caller should `begin`, derive, and `complete`.
    Fresh,
}

/// Shard count for [`ConcurrentTable`]. A small power of two: policy
/// workloads table at most a few thousand variants, so 16 shards already
/// make write collisions between solver threads unlikely.
const SHARDS: usize = 16;

#[derive(Default)]
struct Shard {
    entries: HashMap<Literal, Entry>,
    in_progress: HashSet<Literal>,
}

/// A thread-safe answer table: the same variant-keyed memoization as
/// [`AnswerTable`], sharded by goal-variant hash with a `parking_lot`
/// read-write lock per shard, shareable between solver threads behind an
/// `Arc`.
///
/// Concurrency model (DESIGN.md §4d): lookups take only the shard's read
/// lock; `begin`/`complete` take its write lock. Two threads may race to
/// evaluate the *same* fresh variant — both `begin`, both derive, both
/// `complete`. That is sound, not just benign: all solvers share one
/// immutable knowledge base, so both derivations produce the same answer
/// set and the second `complete` overwrites the first with identical
/// content. The duplicated work is bounded by one variant evaluation per
/// racing thread, and no blocking or cross-shard coordination is needed.
///
/// Sharing discipline: like the single-threaded table, a shared
/// concurrent table is sound only across solvers evaluating the **same**
/// knowledge base (monotone growth is not enough here — a `Complete`
/// entry recorded against a smaller KB may under-approximate the answer
/// set of a grown one when read by a different lineage). Call
/// [`ConcurrentTable::clear`] on any KB change.
///
/// Stats are process-wide atomics rather than per-shard fields so that
/// reading them never takes a lock.
#[derive(Default)]
pub struct ConcurrentTable {
    shards: [RwLock<Shard>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    incomplete: AtomicU64,
    inline_fallbacks: AtomicU64,
}

impl ConcurrentTable {
    pub fn new() -> ConcurrentTable {
        ConcurrentTable::default()
    }

    fn shard(&self, canonical: &Literal) -> &RwLock<Shard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        canonical.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// One read-locked classification of a variant: reusable, inline, or
    /// fresh. Mirrors the single-threaded sequence `in_progress ||
    /// incomplete → inline; lookup → reuse; else fresh`, with the
    /// hit/fallback counters recorded on the matching branch.
    pub fn probe(&self, canonical: &Literal) -> Probe {
        let shard = self.shard(canonical).read();
        if shard.in_progress.contains(canonical) {
            self.inline_fallbacks.fetch_add(1, Ordering::Relaxed);
            return Probe::Inline;
        }
        match shard.entries.get(canonical) {
            Some(e) if e.disposition == Disposition::Complete => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Probe::Reuse(e.answers.clone())
            }
            Some(_) => {
                self.inline_fallbacks.fetch_add(1, Ordering::Relaxed);
                Probe::Inline
            }
            None => Probe::Fresh,
        }
    }

    /// Mark a variant as under evaluation *by this thread*.
    pub fn begin(&self, canonical: Literal) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.shard(&canonical).write().in_progress.insert(canonical);
    }

    /// Record the outcome of a variant evaluation and release the
    /// in-progress mark.
    pub fn complete(
        &self,
        canonical: Literal,
        disposition: Disposition,
        answers: Vec<TabledAnswer>,
    ) {
        if disposition == Disposition::Incomplete {
            self.incomplete.fetch_add(1, Ordering::Relaxed);
        }
        self.inserts
            .fetch_add(answers.len() as u64, Ordering::Relaxed);
        let mut shard = self.shard(&canonical).write();
        shard.in_progress.remove(&canonical);
        shard.entries.insert(
            canonical,
            Entry {
                disposition,
                answers,
            },
        );
    }

    /// Abort a variant evaluation without recording anything.
    pub fn abort(&self, canonical: &Literal) {
        self.shard(canonical).write().in_progress.remove(canonical);
    }

    /// Record one inline fallback counted outside [`ConcurrentTable::probe`].
    pub fn note_inline_fallback(&self) {
        self.inline_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of variants with a recorded entry.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().entries.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().entries.is_empty())
    }

    /// Total answers stored across all entries.
    pub fn answer_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .entries
                    .values()
                    .map(|e| e.answers.len())
                    .sum::<usize>()
            })
            .sum()
    }

    pub fn stats(&self) -> TableStats {
        TableStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            incomplete: self.incomplete.load(Ordering::Relaxed),
            inline_fallbacks: self.inline_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Drop every entry (keeps the stats).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut s = s.write();
            s.entries.clear();
            s.in_progress.clear();
        }
    }
}

// The table crosses thread boundaries behind an `Arc`; everything inside
// a `Literal`/`Proof` is interned symbols and owned vectors.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ConcurrentTable>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sld::ProofStep;
    use peertrust_core::Term;

    fn lit(name: &str, n: i64) -> Literal {
        Literal::new(name, vec![Term::int(n)])
    }

    fn ans(name: &str, n: i64) -> TabledAnswer {
        TabledAnswer::new(
            lit(name, n),
            Proof {
                goal: lit(name, n),
                step: ProofStep::Builtin,
                children: Vec::new(),
            },
        )
    }

    #[test]
    fn complete_entries_are_reusable() {
        let mut t = AnswerTable::new();
        let key = lit("p", 0);
        assert!(t.lookup(&key).is_none());
        t.begin(key.clone());
        assert!(t.in_progress(&key));
        t.complete(key.clone(), Disposition::Complete, vec![ans("p", 1)]);
        assert!(!t.in_progress(&key));
        assert_eq!(t.lookup(&key).unwrap().len(), 1);
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
        assert_eq!(t.stats().inserts, 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.answer_count(), 1);
    }

    #[test]
    fn incomplete_entries_never_reused() {
        let mut t = AnswerTable::new();
        let key = lit("q", 0);
        t.begin(key.clone());
        t.complete(key.clone(), Disposition::Incomplete, vec![ans("q", 1)]);
        assert!(t.lookup(&key).is_none());
        assert_eq!(t.disposition(&key), Some(Disposition::Incomplete));
        assert_eq!(t.stats().incomplete, 1);
    }

    #[test]
    fn abort_releases_in_progress_without_entry() {
        let mut t = AnswerTable::new();
        let key = lit("r", 0);
        t.begin(key.clone());
        t.abort(&key);
        assert!(!t.in_progress(&key));
        assert!(t.disposition(&key).is_none());
    }

    #[test]
    fn clear_keeps_stats() {
        let mut t = AnswerTable::new();
        t.begin(lit("p", 0));
        t.complete(lit("p", 0), Disposition::Complete, vec![ans("p", 1)]);
        let _ = t.lookup(&lit("p", 0));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.stats().hits, 1);
    }

    #[test]
    fn concurrent_table_mirrors_single_threaded_protocol() {
        let t = ConcurrentTable::new();
        let key = lit("p", 0);
        assert!(matches!(t.probe(&key), Probe::Fresh));
        t.begin(key.clone());
        // While in progress a probe is an inline fallback (cycle guard).
        assert!(matches!(t.probe(&key), Probe::Inline));
        t.complete(key.clone(), Disposition::Complete, vec![ans("p", 1)]);
        match t.probe(&key) {
            Probe::Reuse(answers) => assert_eq!(answers.len(), 1),
            other => panic!("expected reuse, got {other:?}"),
        }
        let s = t.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.inserts, 1);
        assert_eq!(s.inline_fallbacks, 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.answer_count(), 1);
    }

    #[test]
    fn concurrent_incomplete_entries_never_reused() {
        let t = ConcurrentTable::new();
        let key = lit("q", 0);
        t.begin(key.clone());
        t.complete(key.clone(), Disposition::Incomplete, vec![ans("q", 1)]);
        assert!(matches!(t.probe(&key), Probe::Inline));
        assert_eq!(t.stats().incomplete, 1);
    }

    #[test]
    fn concurrent_abort_releases_in_progress() {
        let t = ConcurrentTable::new();
        let key = lit("r", 0);
        t.begin(key.clone());
        t.abort(&key);
        assert!(matches!(t.probe(&key), Probe::Fresh));
    }

    #[test]
    fn concurrent_clear_keeps_stats() {
        let t = ConcurrentTable::new();
        t.begin(lit("p", 0));
        t.complete(lit("p", 0), Disposition::Complete, vec![ans("p", 1)]);
        let _ = t.probe(&lit("p", 0));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.stats().hits, 1);
    }

    #[test]
    fn concurrent_racing_begins_converge_on_one_entry() {
        // Two "threads" racing on the same fresh variant: both begin,
        // both complete with the same answers (same KB). The second
        // complete overwrites the first with identical content.
        let t = ConcurrentTable::new();
        let key = lit("p", 0);
        t.begin(key.clone());
        t.begin(key.clone());
        t.complete(key.clone(), Disposition::Complete, vec![ans("p", 1)]);
        t.complete(key.clone(), Disposition::Complete, vec![ans("p", 1)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.answer_count(), 1);
        match t.probe(&key) {
            Probe::Reuse(answers) => assert_eq!(answers.len(), 1),
            other => panic!("expected reuse, got {other:?}"),
        }
        assert_eq!(t.stats().misses, 2);
    }
}
