//! Reference clone-per-branch SLD interpreter.
//!
//! This module preserves the solver's *pre-trail* evaluation strategy: at
//! every choice point the whole substitution is cloned, the branch extends
//! its private copy, and backtracking is "drop the copy". It exists for two
//! reasons:
//!
//! 1. **Differential testing.** The production [`crate::Solver`] backtracks
//!    by rolling a binding trail back (O(bindings undone) instead of
//!    O(clone)); `tests/prop_differential.rs` checks both interpreters
//!    produce identical answer sets and proof shapes on random programs.
//! 2. **A machine-independent baseline.** The quick benchmark runs the same
//!    deep-chain scenario through both paths, so the speedup of the trail
//!    store is a ratio of two numbers measured on the *same* machine in the
//!    *same* process.
//!
//! Scope: the local fragment — KB clauses, builtins, negation as failure,
//! self-authority stripping and §3.2 self-closure, the depth bound and the
//! ancestor variant check. No tabling and no remote resolution (the
//! production solver's remote/tabling layers sit *above* unification and
//! are exercised by their own tests).

use crate::builtins::{eval_builtin, BuiltinOutcome};
use crate::sld::{is_variant, EngineConfig, Proof, ProofStep, Solution};
use peertrust_core::{unify_literals, KnowledgeBase, Literal, PeerId, Subst, Term, Var};
use std::sync::Arc;

/// Work items on the evaluation agenda (mirrors the production solver).
enum GoalItem {
    Lit(Literal, usize),
    Fold {
        goal: Literal,
        step: ProofStep,
        arity: usize,
    },
}

enum Flow {
    Continue,
    Stop,
}

/// The clone-per-branch interpreter. Same surface as [`crate::Solver`]
/// restricted to the local fragment: borrow a KB, configure, `solve`.
pub struct RefSolver<'a> {
    kb: &'a KnowledgeBase,
    self_id: PeerId,
    config: EngineConfig,
    rename_counter: u32,
    steps: u64,
    step_budget_exhausted: bool,
}

impl<'a> RefSolver<'a> {
    pub fn new(kb: &'a KnowledgeBase, self_id: PeerId) -> RefSolver<'a> {
        RefSolver {
            kb,
            self_id,
            config: EngineConfig::default(),
            rename_counter: 0,
            steps: 0,
            step_budget_exhausted: false,
        }
    }

    pub fn with_config(mut self, config: EngineConfig) -> RefSolver<'a> {
        self.config = config;
        self
    }

    /// Prove the conjunction `goals`, returning up to
    /// `config.max_solutions` answers with proofs.
    pub fn solve(&mut self, goals: &[Literal]) -> Vec<Solution> {
        let mut query_vars: Vec<Var> = Vec::new();
        for g in goals {
            g.collect_vars(&mut query_vars);
        }
        query_vars.dedup();
        let agenda: Vec<GoalItem> = goals.iter().map(|g| GoalItem::Lit(g.clone(), 0)).collect();
        let mut out = Vec::new();
        let mut anc: Vec<Literal> = Vec::new();
        let mut acc: Vec<Proof> = Vec::new();
        let _ = self.prove(
            &agenda,
            &Subst::new(),
            &mut anc,
            &mut acc,
            &mut out,
            &query_vars,
        );
        out
    }

    /// Is the conjunction provable at all?
    pub fn provable(&mut self, goals: &[Literal]) -> bool {
        let saved = self.config.max_solutions;
        self.config.max_solutions = 1;
        let r = !self.solve(goals).is_empty();
        self.config.max_solutions = saved;
        r
    }

    #[allow(clippy::too_many_arguments)]
    fn prove(
        &mut self,
        agenda: &[GoalItem],
        s: &Subst,
        anc: &mut Vec<Literal>,
        acc: &mut Vec<Proof>,
        out: &mut Vec<Solution>,
        query_vars: &[Var],
    ) -> Flow {
        if self.step_budget_exhausted {
            return Flow::Stop;
        }
        let Some((item, rest)) = agenda.split_first() else {
            let mut subst = Subst::new();
            for v in query_vars {
                let t = Term::Var(*v);
                let resolved = s.apply(&t);
                if resolved != t {
                    subst.bind(*v, resolved);
                }
            }
            out.push(Solution {
                subst,
                proofs: acc.iter().map(|p| resolve_proof(p, s)).collect(),
            });
            return if out.len() >= self.config.max_solutions {
                Flow::Stop
            } else {
                Flow::Continue
            };
        };

        match item {
            GoalItem::Fold { goal, step, arity } => {
                let children = acc
                    .split_off(acc.len() - arity)
                    .into_iter()
                    .map(Arc::new)
                    .collect();
                acc.push(Proof {
                    goal: goal.clone(),
                    step: step.clone(),
                    children,
                });
                let popped = anc.pop();
                let flow = self.prove(rest, s, anc, acc, out, query_vars);
                if let Some(g) = popped {
                    anc.push(g);
                }
                let node = acc.pop().expect("fold node present");
                acc.extend(
                    node.children
                        .into_iter()
                        .map(|c| Arc::try_unwrap(c).unwrap_or_else(|a| (*a).clone())),
                );
                flow
            }
            GoalItem::Lit(goal, depth) => {
                self.steps += 1;
                if self.steps > self.config.max_steps {
                    self.step_budget_exhausted = true;
                    return Flow::Stop;
                }
                let goal = s.apply_literal(goal);
                let depth = *depth;

                // Negation as failure, same floundering rules as the
                // production solver.
                if goal.pred.as_str() == "not" && goal.args.len() == 1 {
                    let inner = match &goal.args[0] {
                        Term::Compound(f, args) => Some(Literal::new(*f, args.to_vec())),
                        Term::Atom(a) => Some(Literal::new(*a, vec![])),
                        _ => None,
                    };
                    let Some(inner) = inner else {
                        return Flow::Continue;
                    };
                    if !inner.is_ground() {
                        return Flow::Continue;
                    }
                    let refuted = {
                        let mut sub =
                            RefSolver::new(self.kb, self.self_id).with_config(EngineConfig {
                                max_solutions: 1,
                                ..self.config
                            });
                        let proved = sub.provable(std::slice::from_ref(&inner));
                        self.steps += sub.steps;
                        !proved
                    };
                    if !refuted {
                        return Flow::Continue;
                    }
                    return self.alternative(
                        &goal,
                        ProofStep::Negation,
                        &[],
                        depth,
                        rest,
                        s,
                        anc,
                        acc,
                        out,
                        query_vars,
                    );
                }

                if goal.is_builtin() {
                    return match eval_builtin(&goal, s) {
                        BuiltinOutcome::True(s2) => self.alternative(
                            &goal,
                            ProofStep::Builtin,
                            &[],
                            depth,
                            rest,
                            &s2,
                            anc,
                            acc,
                            out,
                            query_vars,
                        ),
                        BuiltinOutcome::False | BuiltinOutcome::IllTyped(_) => Flow::Continue,
                    };
                }

                if depth >= self.config.max_depth {
                    return Flow::Continue;
                }

                if self.config.ancestor_loop_check
                    && anc.iter().any(|a| is_variant(&s.apply_literal(a), &goal))
                {
                    return Flow::Continue;
                }

                if goal.eval_peer() == Some(self.self_id) {
                    let inner = goal.strip_outer_authority();
                    return self.alternative(
                        &goal,
                        ProofStep::SelfAuthority,
                        std::slice::from_ref(&inner),
                        depth,
                        rest,
                        s,
                        anc,
                        acc,
                        out,
                        query_vars,
                    );
                }

                // Local clauses: rename apart, clone the substitution per
                // candidate, unify into the clone. This is the hot path the
                // trail store replaced.
                let candidates: Vec<_> = self
                    .kb
                    .candidates(&goal)
                    .map(|sr| (sr.id, sr.rule.clone()))
                    .collect();
                for (id, rule) in &candidates {
                    if rule.body.len() == 1 && rule.body[0] == rule.head {
                        continue;
                    }
                    let renamed = rule.rename_apart_indexed(&mut self.rename_counter);
                    let mut s2 = s.clone();
                    if !unify_literals(&renamed.head, &goal, &mut s2) {
                        continue;
                    }
                    if let Flow::Stop = self.alternative(
                        &goal,
                        ProofStep::Rule(*id),
                        &renamed.body,
                        depth,
                        rest,
                        &s2,
                        anc,
                        acc,
                        out,
                        query_vars,
                    ) {
                        return Flow::Stop;
                    }
                }

                // §3.2 self-closure over the self-extended goal.
                if goal.eval_peer() != Some(self.self_id) {
                    let extended = goal.clone().at(Term::peer(self.self_id));
                    for (id, rule) in &candidates {
                        if rule.body.len() == 1 && rule.body[0] == rule.head {
                            continue;
                        }
                        let renamed = rule.rename_apart_indexed(&mut self.rename_counter);
                        let mut s2 = s.clone();
                        if !unify_literals(&renamed.head, &extended, &mut s2) {
                            continue;
                        }
                        if let Flow::Stop = self.alternative(
                            &goal,
                            ProofStep::Rule(*id),
                            &renamed.body,
                            depth,
                            rest,
                            &s2,
                            anc,
                            acc,
                            out,
                            query_vars,
                        ) {
                            return Flow::Stop;
                        }
                    }
                }

                Flow::Continue
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn alternative(
        &mut self,
        goal: &Literal,
        step: ProofStep,
        body: &[Literal],
        depth: usize,
        rest: &[GoalItem],
        s: &Subst,
        anc: &mut Vec<Literal>,
        acc: &mut Vec<Proof>,
        out: &mut Vec<Solution>,
        query_vars: &[Var],
    ) -> Flow {
        let mut agenda: Vec<GoalItem> = Vec::with_capacity(body.len() + 1 + rest.len());
        for b in body {
            agenda.push(GoalItem::Lit(b.clone(), depth + 1));
        }
        agenda.push(GoalItem::Fold {
            goal: goal.clone(),
            step,
            arity: body.len(),
        });
        agenda.extend(rest.iter().map(|g| match g {
            GoalItem::Lit(l, d) => GoalItem::Lit(l.clone(), *d),
            GoalItem::Fold { goal, step, arity } => GoalItem::Fold {
                goal: goal.clone(),
                step: step.clone(),
                arity: *arity,
            },
        }));
        anc.push(goal.clone());
        let flow = self.prove(&agenda, s, anc, acc, out, query_vars);
        anc.pop();
        flow
    }
}

fn resolve_proof(p: &Proof, s: &Subst) -> Proof {
    Proof {
        goal: s.apply_literal(&p.goal),
        step: p.step.clone(),
        children: p
            .children
            .iter()
            .map(|c| Arc::new(resolve_proof(c, s)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_parser::{parse_literal, parse_program};

    fn solve_all(src: &str, goal: &str) -> Vec<Solution> {
        let kb: KnowledgeBase = parse_program(src).unwrap().into_iter().collect();
        let g = parse_literal(goal).unwrap();
        RefSolver::new(&kb, PeerId::new("self")).solve(std::slice::from_ref(&g))
    }

    #[test]
    fn facts_and_rules() {
        let sols = solve_all("q(X) <- p(X). p(1). p(2).", "q(Y)");
        assert_eq!(sols.len(), 2);
        let ys: Vec<_> = sols
            .iter()
            .map(|s| s.subst.apply(&Term::var("Y")))
            .collect();
        assert_eq!(ys, vec![Term::int(1), Term::int(2)]);
    }

    #[test]
    fn cyclic_reachability_terminates() {
        let sols = solve_all(
            "reach(X, Y) <- edge(X, Y).
             reach(X, Z) <- edge(X, Y), reach(Y, Z).
             edge(1, 2). edge(2, 3). edge(3, 1).",
            "reach(1, W)",
        );
        assert_eq!(sols.len(), 3);
    }

    #[test]
    fn builtins_and_negation() {
        let sols = solve_all(
            "ok(X) <- p(X), X < 3, not(blocked(X)). p(1). p(2). p(5). blocked(2).",
            "ok(V)",
        );
        let vs: Vec<_> = sols
            .iter()
            .map(|s| s.subst.apply(&Term::var("V")))
            .collect();
        assert_eq!(vs, vec![Term::int(1)]);
    }

    #[test]
    fn agrees_with_production_solver_on_paper_example() {
        let src = r#"
            authorized(Requester, Resource) <- member(Requester), resource(Resource).
            member("Alice"). member("Bob").
            resource(cs101). resource(cs102).
        "#;
        let kb: KnowledgeBase = parse_program(src).unwrap().into_iter().collect();
        let g = parse_literal("authorized(P, R)").unwrap();
        let reference = RefSolver::new(&kb, PeerId::new("self")).solve(std::slice::from_ref(&g));
        let production =
            crate::Solver::new(&kb, PeerId::new("self")).solve(std::slice::from_ref(&g));
        assert_eq!(reference.len(), production.len());
        for (a, b) in reference.iter().zip(&production) {
            assert_eq!(
                a.subst.apply(&Term::var("P")),
                b.subst.apply(&Term::var("P"))
            );
            assert_eq!(
                a.subst.apply(&Term::var("R")),
                b.subst.apply(&Term::var("R"))
            );
        }
    }
}
