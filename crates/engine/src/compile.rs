//! WAM-lite policy compilation: a one-shot compiler from a peer's
//! [`KnowledgeBase`] to a flat bytecode KB the solver resolves against
//! without per-use clause renaming.
//!
//! ## What is compiled away
//!
//! The interpreted hot path pays, per candidate clause per goal:
//!
//! 1. **Standardize-apart renaming** — `Rule::rename_apart_indexed`
//!    rebuilds the whole rule (head, contexts, body) with fresh variable
//!    versions *before* knowing whether the head even matches.
//! 2. **Head materialization** — the renamed head literal is allocated
//!    just to be torn apart again by `unify_literals_in`.
//! 3. **Candidate collection** — `KnowledgeBase::candidates` may merge
//!    two index buckets into a fresh `Vec` per goal selection.
//!
//! Compilation does each of these once, at compile time:
//!
//! * Every clause gets a **register frame**: its variables are renumbered
//!   `1..=nvars` by the same monotone-counter scheme the interpreter
//!   uses, but frozen into the clause. At run time, "renaming" is adding
//!   the solver's counter to a version — no term is rebuilt
//!   ([`peertrust_core::offset_term`] instantiates the body lazily, and
//!   head unification never materializes the renamed head at all).
//! * Head unification is lowered to **get instructions**
//!   ([`HeadInstr`]), matched argument-by-argument against the goal over
//!   the existing [`Bindings`] trail: ground arguments compare
//!   structurally with zero allocation, first-occurrence variables bind
//!   infallibly without an occurs check, and only genuinely compound
//!   patterns fall back to full (offset) unification.
//! * Body goals are lowered to **put instructions** ([`BodyInstr`]):
//!   when a clause is selected, each body literal is built directly
//!   against the binding store by [`CompiledGoal::materialize`] — ground
//!   subterms are shared (`Arc` bump), first-occurrence variables emit a
//!   renamed var with *no* store lookup (they are provably unbound at
//!   selection time), and bound variables resolve through
//!   [`Bindings::apply_offset`], a fused rename+resolve. The agenda holds
//!   `(clause goals, index, base)` triples instead of instantiated
//!   literals, so unexplored alternatives cost nothing. Arguments and
//!   authority cells are staged on the bindings' bump
//!   [`TermHeap`](peertrust_core::heap::TermHeap) and split into the literal's
//!   `args`/`authority` vectors in one drain.
//! * Clause selection is a **switch-on-constant dispatch**
//!   ([`CompiledKb::dispatch`]): per `(predicate, arity,
//!   authority-length)` key, a table from first-argument [`IndexKey`] to
//!   a *pre-merged* candidate list (exact-key clauses ∪ variable-headed
//!   clauses, in clause order), so goal selection is one hash lookup
//!   returning a borrowed slice. Keying on authority-chain *length* is
//!   sound because unification requires equal-length authority chains;
//!   it makes the §3.2 self-closure probe (`goal @ Self`, one extra
//!   authority) a guaranteed miss instead of a scan. When the first
//!   argument is open, a **switch-on-authority** second level
//!   discriminates on the outermost authority's [`IndexKey`] (delegation
//!   literals `p(X) @ "Authority"`), with clauses whose authority is a
//!   variable merged into every bucket; per-clause `auth_key` fast-
//!   rejects mismatched ground authorities before head instructions run.
//!
//! ## Invalidation (the PR 2 fingerprint mechanism)
//!
//! A compiled KB captures [`KnowledgeBase::fingerprint`] at compile time.
//! Before consulting it, the solver checks [`CompiledKb::fit`]:
//!
//! * **`Full`** — the KB is exactly the compiled snapshot.
//! * **`Prefix`** — the KB *starts with* the snapshot (credentials pushed
//!   during a negotiation append rules; KBs are append-only). Compiled
//!   clauses cover rule ids `0..prefix_len`; the solver resolves the
//!   uncompiled suffix interpretively, preserving global clause order.
//! * **`Stale`** — the KB diverged from the snapshot (a different KB was
//!   handed to the solver). The compiled KB is *never consulted*; the
//!   solver falls back to full interpretation and counts
//!   `engine.compiled.stale`.
//!
//! Differential oracles: the interpreter itself (compiled off), the
//! heads-only artifact ([`CompiledKb::compile_heads_only`], which keeps
//! PR 7's interpreted body instantiation), and
//! [`crate::reference::RefSolver`]; see `tests/prop_compiled.rs`.

use crate::sld::{EngineConfig, Solution, Stats};
use crate::Solver;
use peertrust_core::{
    offset_term, unify_ground_in, unify_offset_in, Bindings, IndexKey, KbFingerprint,
    KnowledgeBase, Literal, PeerId, Rule, RuleId, Sym, Term, UnifyOptions, Var,
};
use std::sync::Arc;

/// One head-argument matching instruction. The clause's variables are
/// frame-relative: version `v` stands for the runtime variable
/// `Var { name, version: v + base }` where `base` is the solver's rename
/// counter at match entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HeadInstr {
    /// A ground argument: structural comparison against the goal term
    /// (binds the goal side if it is an unbound variable). No renaming,
    /// no occurs check, no allocation on the match path.
    GetConst(Term),
    /// First occurrence of a whole-argument clause variable: bind the
    /// fresh frame slot to the (walked) goal term. Infallible — the slot
    /// is fresh, so neither a rebind nor an occurs violation is possible.
    GetVar(Var),
    /// A later occurrence of a clause variable: full unification of the
    /// slot's current value against the goal term.
    GetVal(Var),
    /// A non-ground compound argument: offset unification
    /// ([`unify_offset_in`]), which renames clause variables lazily one
    /// at a time instead of instantiating the pattern.
    GetTerm(Term),
}

/// One body-argument construction instruction — the put side of the
/// WAM split. Where get instructions *match* a goal that already exists,
/// put instructions *build* the body goal the solver is about to select,
/// directly against the binding store, with the same frame-offset
/// renaming convention as [`HeadInstr`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BodyInstr {
    /// A ground argument: emitted by reference (compound payloads are
    /// `Arc`-shared with the compiled clause, never rebuilt).
    PutConst(Term),
    /// First clause-wide occurrence of a variable, and that occurrence is
    /// in this literal: nothing selected earlier (head, prior body goals)
    /// can mention it, so it is provably unbound here — emit the offset
    /// variable without consulting the store.
    PutVar(Var),
    /// A variable already introduced by the head or an earlier body
    /// literal: it may be bound by now, so resolve it through the store
    /// ([`Bindings::apply_offset`] on the lone variable).
    PutVal(Var),
    /// A non-ground compound argument: fused rename-and-resolve
    /// ([`Bindings::apply_offset`]) in one structure-sharing pass —
    /// equivalent to `bs.apply(&offset_term(t, base))` without the
    /// intermediate renamed tree.
    PutTerm(Term),
}

/// One compiled body goal: the literal's shape plus its put program.
/// Executing the program against a binding store *materializes* the goal
/// exactly as the interpreter's `bs.apply_literal(offset body literal)`
/// selection step would — the argument cells are assembled on the
/// [`Bindings`] term heap and frozen into the boundary `Literal` in one
/// exact-size allocation per block.
#[derive(Clone, Debug)]
pub struct CompiledGoal {
    pred: Sym,
    args_len: usize,
    instrs: Box<[BodyInstr]>,
}

impl CompiledGoal {
    /// Build this goal at frame `base`, resolved under `bs`. Equivalent
    /// to `bs.apply_literal(&offset body literal)` but allocation-minimal:
    /// cells go through the store's bump heap, ground arguments are
    /// shared, and unbound variables are emitted without a lookup.
    pub fn materialize(&self, base: u32, bs: &mut Bindings) -> Literal {
        let mark = bs.heap_mark();
        for ins in self.instrs.iter() {
            let t = match ins {
                BodyInstr::PutConst(t) => t.clone(),
                BodyInstr::PutVar(v) => Term::Var(Var::versioned(v.name, v.version + base)),
                BodyInstr::PutVal(v) => bs.apply_offset(&Term::Var(*v), base),
                BodyInstr::PutTerm(t) => bs.apply_offset(t, base),
            };
            bs.heap_push(t);
        }
        let (args, authority) = bs.heap_take_split(mark, self.args_len);
        Literal {
            pred: self.pred,
            args,
            authority,
        }
    }

    /// Number of put instructions (the `engine.compiled.body_instrs`
    /// telemetry increment per execution).
    pub fn instr_count(&self) -> usize {
        self.instrs.len()
    }
}

/// One compiled clause: a register-frame layout plus head instructions
/// and a frame-relative body.
#[derive(Clone, Debug)]
pub struct CompiledClause {
    /// Id of the source rule in the KB this was compiled from.
    pub id: RuleId,
    /// Frame size: distinct variables in the source rule. A successful
    /// head match reserves this many versions off the solver's counter.
    pub nvars: u32,
    args_len: usize,
    auth_len: usize,
    /// Index key of the last head-authority term, when it has one: a
    /// goal whose own last authority term carries a *different* key can
    /// never unify (the keys discriminate exactly like first-argument
    /// indexing), so the head match rejects before touching the store.
    auth_key: Option<IndexKey>,
    /// Head instructions, one per argument then one per authority term.
    head: Vec<HeadInstr>,
    /// Body literals with frame-relative variable versions — the
    /// heads-only execution mode ([`CompiledKb::compile_heads_only`])
    /// still instantiates these via [`CompiledClause::body_instance`].
    body: Vec<Literal>,
    /// The body lowered to put programs, `Arc`-shared so agenda items can
    /// reference a goal without instantiating (or even copying) it.
    goals: Arc<[CompiledGoal]>,
}

impl CompiledClause {
    /// Match this clause's head against `goal`, writing bindings for
    /// frame `base` into `bs`. On failure the store is rolled back to
    /// entry state. Equivalent to renaming the source rule apart at
    /// `base` and calling `unify_literals_in(&renamed.head, goal, bs)`.
    pub fn match_head(&self, base: u32, goal: &Literal, bs: &mut Bindings) -> bool {
        if goal.args.len() != self.args_len || goal.authority.len() != self.auth_len {
            return false;
        }
        // Switch-on-term authority discriminator: reject on mismatched
        // last-authority keys without a checkpoint or a store access.
        if let (Some(ck), Some(gk)) = (
            self.auth_key,
            goal.authority.last().and_then(Term::index_key),
        ) {
            if ck != gk {
                return false;
            }
        }
        let opts = UnifyOptions::default();
        let cp = bs.checkpoint();
        for (i, ins) in self.head.iter().enumerate() {
            let gt = if i < self.args_len {
                &goal.args[i]
            } else {
                &goal.authority[i - self.args_len]
            };
            let ok = match ins {
                HeadInstr::GetVar(v) => {
                    let rv = Var::versioned(v.name, v.version + base);
                    let t = bs.walk(gt).clone();
                    // `rv` is fresh: nothing in `bs` or the goal can
                    // mention it yet, so this bind cannot cycle.
                    bs.bind(rv, t);
                    true
                }
                HeadInstr::GetVal(v) => unify_offset_in(&Term::Var(*v), base, gt, bs, opts),
                // Ground argument: in-place structural comparison — no
                // renaming is possible and no term is ever cloned.
                HeadInstr::GetConst(t) => unify_ground_in(t, gt, bs),
                HeadInstr::GetTerm(t) => unify_offset_in(t, base, gt, bs, opts),
            };
            if !ok {
                bs.rollback(cp);
                return false;
            }
        }
        true
    }

    /// The body as put programs, `Arc`-shared with this clause.
    pub fn goals(&self) -> Arc<[CompiledGoal]> {
        Arc::clone(&self.goals)
    }

    /// Instantiate the body at frame `base`: shift every variable version
    /// up by `base`, sharing ground subterms with the compiled clause.
    pub fn body_instance(&self, base: u32) -> Vec<Literal> {
        self.body
            .iter()
            .map(|l| Literal {
                pred: l.pred,
                args: l.args.iter().map(|t| offset_term(t, base)).collect(),
                authority: l.authority.iter().map(|t| offset_term(t, base)).collect(),
            })
            .collect()
    }
}

/// Per-predicate dispatch tables. The index key already discriminates on
/// authority-chain *length* (heads with a different chain length can
/// never match), so every clause in one `PredIndex` shares an arity and
/// an authority arity.
#[derive(Clone, Debug, Default)]
struct PredIndex {
    /// Every clause for this predicate, in clause order.
    all: Vec<u32>,
    /// Clauses whose first head argument is a variable (or arity 0).
    var_headed: Vec<u32>,
    /// Switch-on-constant: first-argument key -> pre-merged candidate
    /// list (exact-key ∪ var-headed, in clause order). Merging at compile
    /// time is what makes run-time dispatch a borrowed slice.
    by_const: peertrust_core::FxHashMap<IndexKey, Vec<u32>>,
    /// Second-level switch-on-term for goals whose first argument gives
    /// no narrowing: last-authority key -> pre-merged candidate list
    /// (exact-key ∪ open-authority, in clause order). `@ Authority`
    /// delegation literals are ubiquitous in PeerTrust policies and
    /// almost always carry a ground peer at the chain's end.
    by_auth: peertrust_core::FxHashMap<IndexKey, Vec<u32>>,
    /// Clauses whose last head-authority term has no index key (a
    /// variable authority, or no chain at all).
    auth_open: Vec<u32>,
}

/// How a compiled KB relates to the KB a solver is about to consult.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompiledFit {
    /// The KB is exactly the compiled snapshot.
    Full,
    /// The KB starts with the compiled snapshot; rules past
    /// [`CompiledKb::prefix_len`] are uncompiled.
    Prefix,
    /// The KB diverged from the snapshot — never consult this artifact.
    Stale,
}

/// A knowledge base compiled to dispatch tables and get/put-instruction
/// clauses. Immutable once built; share across solvers/threads via `Arc`.
#[derive(Clone, Debug)]
pub struct CompiledKb {
    clauses: Vec<CompiledClause>,
    /// Dispatch key: predicate, arity, authority-chain length. Folding
    /// the chain length into the key makes the §3.2 self-closure pass
    /// (which re-dispatches every goal with one extra authority term)
    /// free whenever no clause head carries a matching chain.
    index: peertrust_core::FxHashMap<(Sym, usize, usize), PredIndex>,
    prefix: KbFingerprint,
    /// Whether the solver should execute compiled bodies (put programs).
    /// `false` (heads-only, the PR 7 behaviour) instantiates bodies via
    /// [`CompiledClause::body_instance`] — kept as a differential oracle.
    bodies: bool,
}

impl CompiledKb {
    /// Compile every clause of `kb`, heads and bodies. Release-pattern
    /// self-rules (`p $ ctx <- p`) are derivationally inert disclosure
    /// licenses and are not compiled (the interpreter skips them
    /// identically).
    pub fn compile(kb: &KnowledgeBase) -> CompiledKb {
        CompiledKb::build(kb, true)
    }

    /// Compile with body execution disabled: heads are matched by get
    /// instructions, but bodies are instantiated copy-on-write as in
    /// PR 7. Exists as a mid-point oracle for the differential suite
    /// (interpreter vs heads-only vs body-compiled).
    pub fn compile_heads_only(kb: &KnowledgeBase) -> CompiledKb {
        CompiledKb::build(kb, false)
    }

    fn build(kb: &KnowledgeBase, bodies: bool) -> CompiledKb {
        let mut clauses = Vec::with_capacity(kb.len());
        let mut index: peertrust_core::FxHashMap<(Sym, usize, usize), PredIndex> =
            peertrust_core::FxHashMap::default();
        for sr in kb.iter() {
            if sr.rule.body.len() == 1 && sr.rule.body[0] == sr.rule.head {
                continue;
            }
            let ci = clauses.len() as u32;
            let clause = compile_clause(sr.id, &sr.rule);
            let head = &sr.rule.head;
            let entry = index
                .entry((head.pred, head.args.len(), head.authority.len()))
                .or_default();
            entry.all.push(ci);
            match head.args.first().and_then(Term::index_key) {
                Some(k) => entry.by_const.entry(k).or_default().push(ci),
                None => entry.var_headed.push(ci),
            }
            match head.authority.last().and_then(Term::index_key) {
                Some(k) => entry.by_auth.entry(k).or_default().push(ci),
                None => entry.auth_open.push(ci),
            }
            clauses.push(clause);
        }
        // Pre-merge the open chains into every keyed bucket, preserving
        // clause order (all lists are ascending).
        for p in index.values_mut() {
            for bucket in p.by_const.values_mut() {
                merge_into(bucket, &p.var_headed);
            }
            for bucket in p.by_auth.values_mut() {
                merge_into(bucket, &p.auth_open);
            }
        }
        CompiledKb {
            clauses,
            index,
            prefix: kb.fingerprint(),
            bodies,
        }
    }

    /// Does the solver execute compiled bodies against this artifact?
    pub fn has_bodies(&self) -> bool {
        self.bodies
    }

    /// Number of KB rules this artifact covers (rule ids `0..prefix_len`).
    pub fn prefix_len(&self) -> usize {
        self.prefix.rules
    }

    /// Number of compiled clauses (release-pattern self-rules excluded).
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The fingerprint of the KB snapshot this was compiled from.
    pub fn fingerprint(&self) -> KbFingerprint {
        self.prefix
    }

    /// Does this artifact still describe (a prefix of) `kb`?
    pub fn fit(&self, kb: &KnowledgeBase) -> CompiledFit {
        match kb.prefix_fingerprint(self.prefix.rules) {
            Some(fp) if fp == self.prefix => {
                if kb.len() == self.prefix.rules {
                    CompiledFit::Full
                } else {
                    CompiledFit::Prefix
                }
            }
            _ => CompiledFit::Stale,
        }
    }

    /// Switch-on-constant clause selection: candidate compiled-clause
    /// indices for `goal`, in clause order. One hash lookup, borrowed
    /// slice, no allocation. Same over-approximation as the interpreted
    /// `KnowledgeBase::candidates` (compound keys match on functor;
    /// authority chains are left to head matching).
    pub fn dispatch(&self, goal: &Literal) -> &[u32] {
        let Some(p) = self
            .index
            .get(&(goal.pred, goal.args.len(), goal.authority.len()))
        else {
            return &[];
        };
        match goal.args.first().and_then(Term::index_key) {
            Some(k) => p
                .by_const
                .get(&k)
                .map(Vec::as_slice)
                .unwrap_or(&p.var_headed),
            // Open first argument: fall back to the second-level switch
            // on the goal's last authority term before giving up and
            // scanning the whole predicate.
            None => match goal.authority.last().and_then(Term::index_key) {
                Some(k) => p.by_auth.get(&k).map(Vec::as_slice).unwrap_or(&p.auth_open),
                None => &p.all,
            },
        }
    }

    /// Fetch a compiled clause by dispatch index.
    pub fn clause(&self, idx: u32) -> &CompiledClause {
        &self.clauses[idx as usize]
    }
}

/// Merge the ascending id list `open` into the ascending `bucket`,
/// preserving clause (insertion) order.
fn merge_into(bucket: &mut Vec<u32>, open: &[u32]) {
    if open.is_empty() {
        return;
    }
    let exact = std::mem::take(bucket);
    let mut merged = Vec::with_capacity(exact.len() + open.len());
    let (mut i, mut j) = (0, 0);
    while i < exact.len() || j < open.len() {
        match (exact.get(i), open.get(j)) {
            (Some(&a), Some(&b)) => {
                if a < b {
                    merged.push(a);
                    i += 1;
                } else {
                    merged.push(b);
                    j += 1;
                }
            }
            (Some(&a), None) => {
                merged.push(a);
                i += 1;
            }
            (None, Some(&b)) => {
                merged.push(b);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    *bucket = merged;
}

/// Lower one rule: renumber its variables into a fresh 1-based frame,
/// lower each head argument to the cheapest get instruction that
/// preserves unification semantics, then lower each body literal to a
/// put program. The `seen` set threads through head and body in
/// execution order, so "first occurrence" below means first in the whole
/// clause — the invariant [`BodyInstr::PutVar`]'s soundness rests on.
fn compile_clause(id: RuleId, rule: &Rule) -> CompiledClause {
    let mut ctr = 0u32;
    let renamed = rule.rename_apart_indexed(&mut ctr);
    let args_len = renamed.head.args.len();
    let auth_len = renamed.head.authority.len();
    let auth_key = renamed.head.authority.last().and_then(Term::index_key);
    let mut head = Vec::with_capacity(args_len + auth_len);
    let mut seen: Vec<Var> = Vec::new();
    for t in renamed
        .head
        .args
        .iter()
        .chain(renamed.head.authority.iter())
    {
        head.push(lower(t, &mut seen));
    }
    let goals: Arc<[CompiledGoal]> = renamed
        .body
        .iter()
        .map(|l| lower_goal(l, &mut seen))
        .collect();
    CompiledClause {
        id,
        nvars: ctr,
        args_len,
        auth_len,
        auth_key,
        head,
        body: renamed.body,
        goals,
    }
}

/// Lower one body literal to its put program.
fn lower_goal(l: &Literal, seen: &mut Vec<Var>) -> CompiledGoal {
    let instrs = l
        .args
        .iter()
        .chain(l.authority.iter())
        .map(|t| match lower(t, seen) {
            HeadInstr::GetConst(t) => BodyInstr::PutConst(t),
            HeadInstr::GetVar(v) => BodyInstr::PutVar(v),
            HeadInstr::GetVal(v) => BodyInstr::PutVal(v),
            HeadInstr::GetTerm(t) => BodyInstr::PutTerm(t),
        })
        .collect();
    CompiledGoal {
        pred: l.pred,
        args_len: l.args.len(),
        instrs,
    }
}

fn lower(t: &Term, seen: &mut Vec<Var>) -> HeadInstr {
    match t {
        Term::Var(v) => {
            if seen.contains(v) {
                HeadInstr::GetVal(*v)
            } else {
                seen.push(*v);
                HeadInstr::GetVar(*v)
            }
        }
        _ if t.is_ground() => HeadInstr::GetConst(t.clone()),
        _ => {
            // Every variable inside the pattern counts as seen: a later
            // whole-argument occurrence must re-unify, not re-bind.
            let mut vs = Vec::new();
            t.collect_vars(&mut vs);
            for v in vs {
                if !seen.contains(&v) {
                    seen.push(v);
                }
            }
            HeadInstr::GetTerm(t.clone())
        }
    }
}

/// A solver running over a compiled KB: the existing [`Solver`] surface
/// (same `Subst` boundary, proofs, tabling, telemetry) with the compiled
/// artifact attached and `EngineConfig::compiled` forced on. The thin
/// wrapper exists so call sites that always want the compiled path don't
/// have to thread the `Arc` and the flag separately.
pub struct CompiledSolver<'a> {
    inner: Solver<'a>,
}

impl<'a> CompiledSolver<'a> {
    /// Solve over `kb` using `compiled` (typically
    /// `CompiledKb::compile(kb)` shared via `Arc` across solvers).
    pub fn new(kb: &'a KnowledgeBase, self_id: PeerId, compiled: Arc<CompiledKb>) -> Self {
        CompiledSolver {
            inner: Solver::new(kb, self_id).with_compiled(compiled),
        }
    }

    pub fn with_config(mut self, mut config: EngineConfig) -> Self {
        config.compiled = true;
        self.inner = self.inner.with_config(config);
        self
    }

    pub fn solve(&mut self, goals: &[Literal]) -> Vec<Solution> {
        self.inner.solve(goals)
    }

    pub fn provable(&mut self, goals: &[Literal]) -> bool {
        self.inner.provable(goals)
    }

    pub fn stats(&self) -> Stats {
        self.inner.stats()
    }

    /// The underlying solver, for attaching hooks/tables/telemetry.
    pub fn solver(&mut self) -> &mut Solver<'a> {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_core::unify_literals_in;

    fn kb_from(rules: Vec<Rule>) -> KnowledgeBase {
        rules.into_iter().collect()
    }

    fn lit(pred: &str, args: Vec<Term>) -> Literal {
        Literal::new(pred, args)
    }

    #[test]
    fn lowering_picks_cheapest_instruction() {
        let rule = Rule::horn(
            lit(
                "p",
                vec![
                    Term::atom("a"),
                    Term::var("X"),
                    Term::var("X"),
                    Term::compound("f", vec![Term::var("Y"), Term::int(1)]),
                    Term::compound("g", vec![Term::int(2)]),
                ],
            ),
            vec![],
        );
        let c = compile_clause(RuleId(0), &rule);
        assert_eq!(c.nvars, 2);
        assert!(matches!(c.head[0], HeadInstr::GetConst(_)));
        assert!(matches!(c.head[1], HeadInstr::GetVar(_)));
        assert!(matches!(c.head[2], HeadInstr::GetVal(_)));
        assert!(matches!(c.head[3], HeadInstr::GetTerm(_)));
        assert!(matches!(c.head[4], HeadInstr::GetConst(_)));
    }

    #[test]
    fn pattern_vars_block_later_getvar() {
        // p(f(X), X): the second X must be GetVal — X was introduced
        // inside the pattern, binding it blindly would skip the unify.
        let rule = Rule::horn(
            lit(
                "p",
                vec![Term::compound("f", vec![Term::var("X")]), Term::var("X")],
            ),
            vec![],
        );
        let c = compile_clause(RuleId(0), &rule);
        assert!(matches!(c.head[0], HeadInstr::GetTerm(_)));
        assert!(matches!(c.head[1], HeadInstr::GetVal(_)));
    }

    #[test]
    fn match_head_agrees_with_interpreted_unification() {
        let heads = [
            lit("p", vec![Term::atom("a"), Term::var("X")]),
            lit("p", vec![Term::var("X"), Term::var("X")]),
            lit(
                "p",
                vec![Term::compound("f", vec![Term::var("X")]), Term::var("X")],
            ),
            lit("p", vec![Term::int(1), Term::int(2)]),
            lit(
                "p",
                vec![Term::var("X"), Term::compound("f", vec![Term::var("X")])],
            ),
        ];
        let goals = [
            lit("p", vec![Term::atom("a"), Term::int(3)]),
            lit("p", vec![Term::var("G"), Term::var("G")]),
            lit("p", vec![Term::var("G"), Term::var("H")]),
            lit(
                "p",
                vec![Term::compound("f", vec![Term::int(1)]), Term::int(1)],
            ),
            lit("p", vec![Term::int(1), Term::int(2)]),
        ];
        for h in &heads {
            let rule = Rule::horn(h.clone(), vec![]);
            let c = compile_clause(RuleId(0), &rule);
            for g in &goals {
                let base = 100u32;
                let mut bs_c = Bindings::new(0);
                let ok_c = c.match_head(base, g, &mut bs_c);

                let mut ctr = base;
                let renamed = rule.rename_apart_indexed(&mut ctr);
                let mut bs_i = Bindings::new(0);
                let ok_i = unify_literals_in(&renamed.head, g, &mut bs_i);

                assert_eq!(ok_c, ok_i, "verdict for head {h} vs goal {g}");
                if ok_c {
                    for name in ["G", "H"] {
                        let t = Term::var(name);
                        assert_eq!(
                            bs_c.apply(&t),
                            bs_i.apply(&t),
                            "goal binding {name} for {h} vs {g}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dispatch_narrows_and_preserves_clause_order() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(Rule::fact(lit("p", vec![Term::var("X")]))); // 0
        kb.add_local(Rule::fact(lit("p", vec![Term::atom("a")]))); // 1
        kb.add_local(Rule::fact(lit("p", vec![Term::var("Y")]))); // 2
        kb.add_local(Rule::fact(lit("p", vec![Term::atom("a")]))); // 3
        kb.add_local(Rule::fact(lit("p", vec![Term::atom("b")]))); // 4
        let c = CompiledKb::compile(&kb);
        let ids = |goal: &Literal| -> Vec<u32> {
            c.dispatch(goal).iter().map(|&i| c.clause(i).id.0).collect()
        };
        assert_eq!(ids(&lit("p", vec![Term::atom("a")])), vec![0, 1, 2, 3]);
        assert_eq!(ids(&lit("p", vec![Term::atom("b")])), vec![0, 2, 4]);
        // Unknown constant: only the var-headed chain.
        assert_eq!(ids(&lit("p", vec![Term::atom("z")])), vec![0, 2]);
        // Open goal: everything.
        assert_eq!(ids(&lit("p", vec![Term::var("Q")])), vec![0, 1, 2, 3, 4]);
        // Unknown predicate: nothing.
        assert_eq!(ids(&lit("q", vec![Term::var("Q")])), Vec::<u32>::new());
    }

    #[test]
    fn release_pattern_self_rules_are_not_compiled() {
        let head = lit("cred", vec![Term::var("X")]);
        let mut kb = KnowledgeBase::new();
        kb.add_local(Rule::horn(head.clone(), vec![head.clone()]));
        kb.add_local(Rule::fact(lit("cred", vec![Term::atom("a")])));
        let c = CompiledKb::compile(&kb);
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.clause(c.dispatch(&lit("cred", vec![Term::atom("a")]))[0])
                .id,
            RuleId(1)
        );
    }

    #[test]
    fn fit_full_prefix_stale() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(Rule::fact(lit("p", vec![Term::atom("a")])));
        let c = CompiledKb::compile(&kb);
        assert_eq!(c.fit(&kb), CompiledFit::Full);

        kb.add_local(Rule::fact(lit("p", vec![Term::atom("b")])));
        assert_eq!(c.fit(&kb), CompiledFit::Prefix);
        assert_eq!(c.prefix_len(), 1);

        let mut other = KnowledgeBase::new();
        other.add_local(Rule::fact(lit("q", vec![Term::atom("a")])));
        assert_eq!(c.fit(&other), CompiledFit::Stale);
    }

    #[test]
    fn compiled_solver_answers_match_interpreter() {
        let mut kb = KnowledgeBase::new();
        for i in 0..5 {
            kb.add_local(Rule::fact(lit(
                "edge",
                vec![Term::int(i), Term::int(i + 1)],
            )));
        }
        kb.add_local(Rule::horn(
            lit("reach", vec![Term::var("X"), Term::var("Y")]),
            vec![lit("edge", vec![Term::var("X"), Term::var("Y")])],
        ));
        kb.add_local(Rule::horn(
            lit("reach", vec![Term::var("X"), Term::var("Z")]),
            vec![
                lit("edge", vec![Term::var("X"), Term::var("Y")]),
                lit("reach", vec![Term::var("Y"), Term::var("Z")]),
            ],
        ));
        let me = PeerId::new("me");
        let goal = lit("reach", vec![Term::int(0), Term::var("T")]);

        let mut interp = Solver::new(&kb, me);
        let expected: Vec<String> = interp
            .solve(std::slice::from_ref(&goal))
            .iter()
            .map(|s| s.subst.apply_literal(&goal).to_string())
            .collect();

        let compiled = Arc::new(CompiledKb::compile(&kb));
        let mut cs = CompiledSolver::new(&kb, me, compiled);
        let got: Vec<String> = cs
            .solve(std::slice::from_ref(&goal))
            .iter()
            .map(|s| s.subst.apply_literal(&goal).to_string())
            .collect();
        assert_eq!(got, expected);
        assert!(cs.stats().compiled_dispatches > 0, "compiled path ran");
        assert_eq!(cs.stats().compiled_stale, 0);
    }

    #[test]
    fn stale_compiled_kb_is_never_consulted() {
        // Compile one KB, then hand the solver a *different* KB with the
        // same predicates: answers must come from the real KB via the
        // interpreter, and the compiled artifact must never be touched.
        let mut kb1 = KnowledgeBase::new();
        kb1.add_local(Rule::fact(lit("p", vec![Term::atom("old")])));
        let compiled = Arc::new(CompiledKb::compile(&kb1));

        let mut kb2 = KnowledgeBase::new();
        kb2.add_local(Rule::fact(lit("p", vec![Term::atom("new")])));
        kb2.add_local(Rule::fact(lit("p", vec![Term::atom("newer")])));

        let me = PeerId::new("me");
        let goal = lit("p", vec![Term::var("X")]);
        let mut s = Solver::new(&kb2, me).with_compiled(compiled);
        let answers: Vec<String> = s
            .solve(std::slice::from_ref(&goal))
            .iter()
            .map(|sol| sol.subst.apply_literal(&goal).to_string())
            .collect();
        assert_eq!(answers, vec!["p(new)", "p(newer)"]);
        assert_eq!(s.stats().compiled_dispatches, 0, "stale KB consulted");
        assert!(s.stats().compiled_stale > 0, "staleness not recorded");
    }

    #[test]
    fn prefix_fit_resolves_appended_rules_interpretively() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(Rule::fact(lit("p", vec![Term::atom("compiled")])));
        let compiled = Arc::new(CompiledKb::compile(&kb));
        // Appends after compilation — e.g. credentials pushed mid-negotiation.
        kb.add_local(Rule::fact(lit("p", vec![Term::atom("appended")])));

        let me = PeerId::new("me");
        let goal = lit("p", vec![Term::var("X")]);
        let mut s = Solver::new(&kb, me).with_compiled(compiled);
        let answers: Vec<String> = s
            .solve(std::slice::from_ref(&goal))
            .iter()
            .map(|sol| sol.subst.apply_literal(&goal).to_string())
            .collect();
        // Clause order preserved: compiled prefix first, then the suffix.
        assert_eq!(answers, vec!["p(compiled)", "p(appended)"]);
        assert!(s.stats().compiled_dispatches > 0);
        assert_eq!(s.stats().compiled_stale, 0);
    }

    #[test]
    fn engine_config_compiled_autocompiles() {
        let kb = kb_from(vec![Rule::fact(lit("p", vec![Term::atom("a")]))]);
        let me = PeerId::new("me");
        let goal = lit("p", vec![Term::var("X")]);
        let mut s = Solver::new(&kb, me).with_config(EngineConfig {
            compiled: true,
            ..EngineConfig::default()
        });
        let answers = s.solve(std::slice::from_ref(&goal));
        assert_eq!(answers.len(), 1);
        assert!(s.stats().compiled_dispatches > 0, "auto-compiled path ran");
    }

    #[test]
    fn body_lowering_picks_cheapest_put_instruction() {
        // p(X) <- q(a, X, Y, f(Y)), r(Y, Z, Z).
        // X is seen in the head -> PutVal. Y first occurs in body[0]
        // (PutVar), is repeated inside a pattern there (PutTerm), and is
        // old by body[1] (PutVal). Z first occurs in body[1] (PutVar)
        // and repeats *within the same literal* — still lowered as
        // PutVal, which degenerates to the same emitted var while
        // unbound.
        let (x, y, z) = (Term::var("X"), Term::var("Y"), Term::var("Z"));
        let rule = Rule::horn(
            lit("p", vec![x.clone()]),
            vec![
                lit(
                    "q",
                    vec![
                        Term::atom("a"),
                        x,
                        y.clone(),
                        Term::compound("f", vec![y.clone()]),
                    ],
                ),
                lit("r", vec![y, z.clone(), z]),
            ],
        );
        let c = compile_clause(RuleId(0), &rule);
        let q = &c.goals[0];
        assert!(matches!(q.instrs[0], BodyInstr::PutConst(_)));
        assert!(matches!(q.instrs[1], BodyInstr::PutVal(_)));
        assert!(matches!(q.instrs[2], BodyInstr::PutVar(_)));
        assert!(matches!(q.instrs[3], BodyInstr::PutTerm(_)));
        let r = &c.goals[1];
        assert!(matches!(r.instrs[0], BodyInstr::PutVal(_)));
        assert!(matches!(r.instrs[1], BodyInstr::PutVar(_)));
        assert!(matches!(r.instrs[2], BodyInstr::PutVal(_)));
    }

    #[test]
    fn materialize_matches_interpreted_body_instantiation() {
        // After a successful head match, every compiled body goal must
        // materialize to exactly what the interpreter produces by
        // renaming the body literal and applying the store at selection
        // time — including authority chains and nested patterns.
        let (x, y, z) = (Term::var("X"), Term::var("Y"), Term::var("Z"));
        let rule = Rule::horn(
            lit("p", vec![x.clone(), Term::compound("f", vec![y.clone()])]),
            vec![
                lit(
                    "q",
                    vec![y.clone(), Term::compound("g", vec![x.clone(), z.clone()])],
                )
                .at(x.clone()),
                lit("r", vec![z, Term::atom("k")]).at(Term::str("UIUC")),
            ],
        );
        let c = compile_clause(RuleId(0), &rule);
        let goal = lit(
            "p",
            vec![Term::str("alice"), Term::compound("f", vec![Term::int(7)])],
        );
        let base = 40u32;
        let mut bs = Bindings::new(0);
        assert!(c.match_head(base, &goal, &mut bs));

        let want: Vec<Literal> = c
            .body_instance(base)
            .iter()
            .map(|l| bs.apply_literal(l))
            .collect();
        let got: Vec<Literal> = c
            .goals
            .iter()
            .map(|g| g.materialize(base, &mut bs))
            .collect();
        assert_eq!(got, want);
        // Ground compound payloads are shared with the goal, not rebuilt.
        let Term::Compound(_, got_args) = &got[0].args[1] else {
            panic!("expected compound");
        };
        assert!(matches!(&**got_args, [Term::Str(_), Term::Var(_)]));
    }

    #[test]
    fn authority_dispatch_narrows_on_outer_authority() {
        let du = |c: &str, a: &str| Rule::fact(lit("d", vec![Term::atom(c)]).at(Term::str(a)));
        let mut kb = KnowledgeBase::new();
        kb.add_local(du("a", "u1")); // 0
        kb.add_local(Rule::fact(
            lit("d", vec![Term::var("X")]).at(Term::str("u1")),
        )); // 1
        kb.add_local(du("b", "u2")); // 2
        kb.add_local(Rule::fact(
            lit("d", vec![Term::var("X")]).at(Term::var("V")),
        )); // 3
        let c = CompiledKb::compile(&kb);
        let ids = |goal: &Literal| -> Vec<u32> {
            c.dispatch(goal).iter().map(|&i| c.clause(i).id.0).collect()
        };
        let open = |a: Term| lit("d", vec![Term::var("A")]).at(a);
        // Open first argument: the authority key discriminates.
        assert_eq!(ids(&open(Term::str("u1"))), vec![0, 1, 3]);
        assert_eq!(ids(&open(Term::str("u2"))), vec![2, 3]);
        assert_eq!(ids(&open(Term::str("u9"))), vec![3]);
        // Variable authority: everything with this (pred, arity, auth-len).
        assert_eq!(ids(&open(Term::var("W"))), vec![0, 1, 2, 3]);
        // Ground first argument takes precedence over the authority level.
        assert_eq!(
            ids(&lit("d", vec![Term::atom("a")]).at(Term::str("u1"))),
            vec![0, 1, 3]
        );
        // Different authority-chain length: guaranteed miss (the §3.2
        // self-closure probe adds one authority and must cost nothing).
        assert_eq!(ids(&lit("d", vec![Term::var("A")])), Vec::<u32>::new());
        assert_eq!(
            ids(&open(Term::str("u1")).at(Term::str("me"))),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn auth_key_fast_rejects_before_head_instructions() {
        // Clause d(a) @ "u1"; goal d(a) @ "u2" arrives via the ground
        // first-argument bucket (which does not discriminate on
        // authority) — the per-clause authority key must reject it
        // without touching the store.
        let rule = Rule::fact(lit("d", vec![Term::atom("a")]).at(Term::str("u1")));
        let c = compile_clause(RuleId(0), &rule);
        assert!(c.auth_key.is_some());
        let mut bs = Bindings::new(0);
        let miss = lit("d", vec![Term::atom("a")]).at(Term::str("u2"));
        assert!(!c.match_head(7, &miss, &mut bs));
        let hit = lit("d", vec![Term::atom("a")]).at(Term::str("u1"));
        assert!(c.match_head(7, &hit, &mut bs));
    }

    #[test]
    fn heads_only_artifact_keeps_interpreted_bodies() {
        let kb = kb_from(vec![Rule::horn(
            lit("p", vec![Term::var("X")]),
            vec![lit("q", vec![Term::var("X")])],
        )]);
        let full = CompiledKb::compile(&kb);
        let heads = CompiledKb::compile_heads_only(&kb);
        assert!(full.has_bodies());
        assert!(!heads.has_bodies());
        // The flag gates execution, not lowering: both artifacts carry
        // the interpreted body (the prefix-fit suffix path needs it) and
        // the put program; `has_bodies` selects which one the solver runs.
        assert_eq!(full.clause(0).goals.len(), 1);
        assert_eq!(heads.clause(0).goals.len(), 1);
        assert_eq!(heads.clause(0).body_instance(3).len(), 1);
    }
}
