//! WAM-lite policy compilation: a one-shot compiler from a peer's
//! [`KnowledgeBase`] to a flat bytecode KB the solver resolves against
//! without per-use clause renaming.
//!
//! ## What is compiled away
//!
//! The interpreted hot path pays, per candidate clause per goal:
//!
//! 1. **Standardize-apart renaming** — `Rule::rename_apart_indexed`
//!    rebuilds the whole rule (head, contexts, body) with fresh variable
//!    versions *before* knowing whether the head even matches.
//! 2. **Head materialization** — the renamed head literal is allocated
//!    just to be torn apart again by `unify_literals_in`.
//! 3. **Candidate collection** — `KnowledgeBase::candidates` may merge
//!    two index buckets into a fresh `Vec` per goal selection.
//!
//! Compilation does each of these once, at compile time:
//!
//! * Every clause gets a **register frame**: its variables are renumbered
//!   `1..=nvars` by the same monotone-counter scheme the interpreter
//!   uses, but frozen into the clause. At run time, "renaming" is adding
//!   the solver's counter to a version — no term is rebuilt
//!   ([`peertrust_core::offset_term`] instantiates the body lazily, and
//!   head unification never materializes the renamed head at all).
//! * Head unification is lowered to **get instructions**
//!   ([`HeadInstr`]), matched argument-by-argument against the goal over
//!   the existing [`Bindings`] trail: ground arguments compare
//!   structurally with zero allocation, first-occurrence variables bind
//!   infallibly without an occurs check, and only genuinely compound
//!   patterns fall back to full (offset) unification.
//! * Clause selection is a **switch-on-constant dispatch**
//!   ([`CompiledKb::dispatch`]): per predicate, a table from first-argument
//!   [`IndexKey`] to a *pre-merged* candidate list (exact-key clauses ∪
//!   variable-headed clauses, in clause order), so goal selection is one
//!   hash lookup returning a borrowed slice.
//!
//! ## Invalidation (the PR 2 fingerprint mechanism)
//!
//! A compiled KB captures [`KnowledgeBase::fingerprint`] at compile time.
//! Before consulting it, the solver checks [`CompiledKb::fit`]:
//!
//! * **`Full`** — the KB is exactly the compiled snapshot.
//! * **`Prefix`** — the KB *starts with* the snapshot (credentials pushed
//!   during a negotiation append rules; KBs are append-only). Compiled
//!   clauses cover rule ids `0..prefix_len`; the solver resolves the
//!   uncompiled suffix interpretively, preserving global clause order.
//! * **`Stale`** — the KB diverged from the snapshot (a different KB was
//!   handed to the solver). The compiled KB is *never consulted*; the
//!   solver falls back to full interpretation and counts
//!   `engine.compiled.stale`.
//!
//! Differential oracles: the interpreter itself (compiled off) and
//! [`crate::reference::RefSolver`]; see `tests/prop_compiled.rs`.

use crate::sld::{EngineConfig, Solution, Stats};
use crate::Solver;
use peertrust_core::{
    offset_term, unify_offset_in, Bindings, IndexKey, KbFingerprint, KnowledgeBase, Literal,
    PeerId, Rule, RuleId, Sym, Term, UnifyOptions, Var,
};
use std::sync::Arc;

/// One head-argument matching instruction. The clause's variables are
/// frame-relative: version `v` stands for the runtime variable
/// `Var { name, version: v + base }` where `base` is the solver's rename
/// counter at match entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HeadInstr {
    /// A ground argument: structural comparison against the goal term
    /// (binds the goal side if it is an unbound variable). No renaming,
    /// no occurs check, no allocation on the match path.
    GetConst(Term),
    /// First occurrence of a whole-argument clause variable: bind the
    /// fresh frame slot to the (walked) goal term. Infallible — the slot
    /// is fresh, so neither a rebind nor an occurs violation is possible.
    GetVar(Var),
    /// A later occurrence of a clause variable: full unification of the
    /// slot's current value against the goal term.
    GetVal(Var),
    /// A non-ground compound argument: offset unification
    /// ([`unify_offset_in`]), which renames clause variables lazily one
    /// at a time instead of instantiating the pattern.
    GetTerm(Term),
}

/// One compiled clause: a register-frame layout plus head instructions
/// and a frame-relative body.
#[derive(Clone, Debug)]
pub struct CompiledClause {
    /// Id of the source rule in the KB this was compiled from.
    pub id: RuleId,
    /// Frame size: distinct variables in the source rule. A successful
    /// head match reserves this many versions off the solver's counter.
    pub nvars: u32,
    args_len: usize,
    auth_len: usize,
    /// Head instructions, one per argument then one per authority term.
    head: Vec<HeadInstr>,
    /// Body literals with frame-relative variable versions.
    body: Vec<Literal>,
}

impl CompiledClause {
    /// Match this clause's head against `goal`, writing bindings for
    /// frame `base` into `bs`. On failure the store is rolled back to
    /// entry state. Equivalent to renaming the source rule apart at
    /// `base` and calling `unify_literals_in(&renamed.head, goal, bs)`.
    pub fn match_head(&self, base: u32, goal: &Literal, bs: &mut Bindings) -> bool {
        if goal.args.len() != self.args_len || goal.authority.len() != self.auth_len {
            return false;
        }
        let opts = UnifyOptions::default();
        let cp = bs.checkpoint();
        for (i, ins) in self.head.iter().enumerate() {
            let gt = if i < self.args_len {
                &goal.args[i]
            } else {
                &goal.authority[i - self.args_len]
            };
            let ok = match ins {
                HeadInstr::GetVar(v) => {
                    let rv = Var::versioned(v.name, v.version + base);
                    let t = bs.walk(gt).clone();
                    // `rv` is fresh: nothing in `bs` or the goal can
                    // mention it yet, so this bind cannot cycle.
                    bs.bind(rv, t);
                    true
                }
                HeadInstr::GetVal(v) => unify_offset_in(&Term::Var(*v), base, gt, bs, opts),
                HeadInstr::GetConst(t) | HeadInstr::GetTerm(t) => {
                    unify_offset_in(t, base, gt, bs, opts)
                }
            };
            if !ok {
                bs.rollback(cp);
                return false;
            }
        }
        true
    }

    /// Instantiate the body at frame `base`: shift every variable version
    /// up by `base`, sharing ground subterms with the compiled clause.
    pub fn body_instance(&self, base: u32) -> Vec<Literal> {
        self.body
            .iter()
            .map(|l| Literal {
                pred: l.pred,
                args: l.args.iter().map(|t| offset_term(t, base)).collect(),
                authority: l.authority.iter().map(|t| offset_term(t, base)).collect(),
            })
            .collect()
    }
}

/// Per-predicate dispatch tables.
#[derive(Clone, Debug, Default)]
struct PredIndex {
    /// Every clause for this predicate, in clause order.
    all: Vec<u32>,
    /// Clauses whose first head argument is a variable (or arity 0).
    var_headed: Vec<u32>,
    /// Switch-on-constant: first-argument key -> pre-merged candidate
    /// list (exact-key ∪ var-headed, in clause order). Merging at compile
    /// time is what makes run-time dispatch a borrowed slice.
    by_const: peertrust_core::FxHashMap<IndexKey, Vec<u32>>,
}

/// How a compiled KB relates to the KB a solver is about to consult.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompiledFit {
    /// The KB is exactly the compiled snapshot.
    Full,
    /// The KB starts with the compiled snapshot; rules past
    /// [`CompiledKb::prefix_len`] are uncompiled.
    Prefix,
    /// The KB diverged from the snapshot — never consult this artifact.
    Stale,
}

/// A knowledge base compiled to dispatch tables and get-instruction
/// clauses. Immutable once built; share across solvers/threads via `Arc`.
#[derive(Clone, Debug)]
pub struct CompiledKb {
    clauses: Vec<CompiledClause>,
    index: peertrust_core::FxHashMap<(Sym, usize), PredIndex>,
    prefix: KbFingerprint,
}

impl CompiledKb {
    /// Compile every clause of `kb`. Release-pattern self-rules
    /// (`p $ ctx <- p`) are derivationally inert disclosure licenses and
    /// are not compiled (the interpreter skips them identically).
    pub fn compile(kb: &KnowledgeBase) -> CompiledKb {
        let mut clauses = Vec::with_capacity(kb.len());
        let mut index: peertrust_core::FxHashMap<(Sym, usize), PredIndex> =
            peertrust_core::FxHashMap::default();
        for sr in kb.iter() {
            if sr.rule.body.len() == 1 && sr.rule.body[0] == sr.rule.head {
                continue;
            }
            let ci = clauses.len() as u32;
            let clause = compile_clause(sr.id, &sr.rule);
            let key = sr.rule.head.functor();
            let entry = index.entry(key).or_default();
            entry.all.push(ci);
            match sr.rule.head.args.first().and_then(Term::index_key) {
                Some(k) => entry.by_const.entry(k).or_default().push(ci),
                None => entry.var_headed.push(ci),
            }
            clauses.push(clause);
        }
        // Pre-merge the var-headed chain into every constant bucket,
        // preserving clause order (both lists are ascending).
        for p in index.values_mut() {
            if p.var_headed.is_empty() {
                continue;
            }
            for bucket in p.by_const.values_mut() {
                let exact = std::mem::take(bucket);
                let mut merged = Vec::with_capacity(exact.len() + p.var_headed.len());
                let (mut i, mut j) = (0, 0);
                while i < exact.len() || j < p.var_headed.len() {
                    match (exact.get(i), p.var_headed.get(j)) {
                        (Some(&a), Some(&b)) => {
                            if a < b {
                                merged.push(a);
                                i += 1;
                            } else {
                                merged.push(b);
                                j += 1;
                            }
                        }
                        (Some(&a), None) => {
                            merged.push(a);
                            i += 1;
                        }
                        (None, Some(&b)) => {
                            merged.push(b);
                            j += 1;
                        }
                        (None, None) => unreachable!(),
                    }
                }
                *bucket = merged;
            }
        }
        CompiledKb {
            clauses,
            index,
            prefix: kb.fingerprint(),
        }
    }

    /// Number of KB rules this artifact covers (rule ids `0..prefix_len`).
    pub fn prefix_len(&self) -> usize {
        self.prefix.rules
    }

    /// Number of compiled clauses (release-pattern self-rules excluded).
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The fingerprint of the KB snapshot this was compiled from.
    pub fn fingerprint(&self) -> KbFingerprint {
        self.prefix
    }

    /// Does this artifact still describe (a prefix of) `kb`?
    pub fn fit(&self, kb: &KnowledgeBase) -> CompiledFit {
        match kb.prefix_fingerprint(self.prefix.rules) {
            Some(fp) if fp == self.prefix => {
                if kb.len() == self.prefix.rules {
                    CompiledFit::Full
                } else {
                    CompiledFit::Prefix
                }
            }
            _ => CompiledFit::Stale,
        }
    }

    /// Switch-on-constant clause selection: candidate compiled-clause
    /// indices for `goal`, in clause order. One hash lookup, borrowed
    /// slice, no allocation. Same over-approximation as the interpreted
    /// `KnowledgeBase::candidates` (compound keys match on functor;
    /// authority chains are left to head matching).
    pub fn dispatch(&self, goal: &Literal) -> &[u32] {
        let Some(p) = self.index.get(&goal.functor()) else {
            return &[];
        };
        match goal.args.first().and_then(Term::index_key) {
            Some(k) => p
                .by_const
                .get(&k)
                .map(Vec::as_slice)
                .unwrap_or(&p.var_headed),
            None => &p.all,
        }
    }

    /// Fetch a compiled clause by dispatch index.
    pub fn clause(&self, idx: u32) -> &CompiledClause {
        &self.clauses[idx as usize]
    }
}

/// Lower one rule: renumber its variables into a fresh 1-based frame,
/// then lower each head argument to the cheapest instruction that
/// preserves unification semantics.
fn compile_clause(id: RuleId, rule: &Rule) -> CompiledClause {
    let mut ctr = 0u32;
    let renamed = rule.rename_apart_indexed(&mut ctr);
    let args_len = renamed.head.args.len();
    let auth_len = renamed.head.authority.len();
    let mut head = Vec::with_capacity(args_len + auth_len);
    let mut seen: Vec<Var> = Vec::new();
    for t in renamed
        .head
        .args
        .iter()
        .chain(renamed.head.authority.iter())
    {
        head.push(lower(t, &mut seen));
    }
    CompiledClause {
        id,
        nvars: ctr,
        args_len,
        auth_len,
        head,
        body: renamed.body,
    }
}

fn lower(t: &Term, seen: &mut Vec<Var>) -> HeadInstr {
    match t {
        Term::Var(v) => {
            if seen.contains(v) {
                HeadInstr::GetVal(*v)
            } else {
                seen.push(*v);
                HeadInstr::GetVar(*v)
            }
        }
        _ if t.is_ground() => HeadInstr::GetConst(t.clone()),
        _ => {
            // Every variable inside the pattern counts as seen: a later
            // whole-argument occurrence must re-unify, not re-bind.
            let mut vs = Vec::new();
            t.collect_vars(&mut vs);
            for v in vs {
                if !seen.contains(&v) {
                    seen.push(v);
                }
            }
            HeadInstr::GetTerm(t.clone())
        }
    }
}

/// A solver running over a compiled KB: the existing [`Solver`] surface
/// (same `Subst` boundary, proofs, tabling, telemetry) with the compiled
/// artifact attached and `EngineConfig::compiled` forced on. The thin
/// wrapper exists so call sites that always want the compiled path don't
/// have to thread the `Arc` and the flag separately.
pub struct CompiledSolver<'a> {
    inner: Solver<'a>,
}

impl<'a> CompiledSolver<'a> {
    /// Solve over `kb` using `compiled` (typically
    /// `CompiledKb::compile(kb)` shared via `Arc` across solvers).
    pub fn new(kb: &'a KnowledgeBase, self_id: PeerId, compiled: Arc<CompiledKb>) -> Self {
        CompiledSolver {
            inner: Solver::new(kb, self_id).with_compiled(compiled),
        }
    }

    pub fn with_config(mut self, mut config: EngineConfig) -> Self {
        config.compiled = true;
        self.inner = self.inner.with_config(config);
        self
    }

    pub fn solve(&mut self, goals: &[Literal]) -> Vec<Solution> {
        self.inner.solve(goals)
    }

    pub fn provable(&mut self, goals: &[Literal]) -> bool {
        self.inner.provable(goals)
    }

    pub fn stats(&self) -> Stats {
        self.inner.stats()
    }

    /// The underlying solver, for attaching hooks/tables/telemetry.
    pub fn solver(&mut self) -> &mut Solver<'a> {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_core::unify_literals_in;

    fn kb_from(rules: Vec<Rule>) -> KnowledgeBase {
        rules.into_iter().collect()
    }

    fn lit(pred: &str, args: Vec<Term>) -> Literal {
        Literal::new(pred, args)
    }

    #[test]
    fn lowering_picks_cheapest_instruction() {
        let rule = Rule::horn(
            lit(
                "p",
                vec![
                    Term::atom("a"),
                    Term::var("X"),
                    Term::var("X"),
                    Term::compound("f", vec![Term::var("Y"), Term::int(1)]),
                    Term::compound("g", vec![Term::int(2)]),
                ],
            ),
            vec![],
        );
        let c = compile_clause(RuleId(0), &rule);
        assert_eq!(c.nvars, 2);
        assert!(matches!(c.head[0], HeadInstr::GetConst(_)));
        assert!(matches!(c.head[1], HeadInstr::GetVar(_)));
        assert!(matches!(c.head[2], HeadInstr::GetVal(_)));
        assert!(matches!(c.head[3], HeadInstr::GetTerm(_)));
        assert!(matches!(c.head[4], HeadInstr::GetConst(_)));
    }

    #[test]
    fn pattern_vars_block_later_getvar() {
        // p(f(X), X): the second X must be GetVal — X was introduced
        // inside the pattern, binding it blindly would skip the unify.
        let rule = Rule::horn(
            lit(
                "p",
                vec![Term::compound("f", vec![Term::var("X")]), Term::var("X")],
            ),
            vec![],
        );
        let c = compile_clause(RuleId(0), &rule);
        assert!(matches!(c.head[0], HeadInstr::GetTerm(_)));
        assert!(matches!(c.head[1], HeadInstr::GetVal(_)));
    }

    #[test]
    fn match_head_agrees_with_interpreted_unification() {
        let heads = [
            lit("p", vec![Term::atom("a"), Term::var("X")]),
            lit("p", vec![Term::var("X"), Term::var("X")]),
            lit(
                "p",
                vec![Term::compound("f", vec![Term::var("X")]), Term::var("X")],
            ),
            lit("p", vec![Term::int(1), Term::int(2)]),
            lit(
                "p",
                vec![Term::var("X"), Term::compound("f", vec![Term::var("X")])],
            ),
        ];
        let goals = [
            lit("p", vec![Term::atom("a"), Term::int(3)]),
            lit("p", vec![Term::var("G"), Term::var("G")]),
            lit("p", vec![Term::var("G"), Term::var("H")]),
            lit(
                "p",
                vec![Term::compound("f", vec![Term::int(1)]), Term::int(1)],
            ),
            lit("p", vec![Term::int(1), Term::int(2)]),
        ];
        for h in &heads {
            let rule = Rule::horn(h.clone(), vec![]);
            let c = compile_clause(RuleId(0), &rule);
            for g in &goals {
                let base = 100u32;
                let mut bs_c = Bindings::new(0);
                let ok_c = c.match_head(base, g, &mut bs_c);

                let mut ctr = base;
                let renamed = rule.rename_apart_indexed(&mut ctr);
                let mut bs_i = Bindings::new(0);
                let ok_i = unify_literals_in(&renamed.head, g, &mut bs_i);

                assert_eq!(ok_c, ok_i, "verdict for head {h} vs goal {g}");
                if ok_c {
                    for name in ["G", "H"] {
                        let t = Term::var(name);
                        assert_eq!(
                            bs_c.apply(&t),
                            bs_i.apply(&t),
                            "goal binding {name} for {h} vs {g}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dispatch_narrows_and_preserves_clause_order() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(Rule::fact(lit("p", vec![Term::var("X")]))); // 0
        kb.add_local(Rule::fact(lit("p", vec![Term::atom("a")]))); // 1
        kb.add_local(Rule::fact(lit("p", vec![Term::var("Y")]))); // 2
        kb.add_local(Rule::fact(lit("p", vec![Term::atom("a")]))); // 3
        kb.add_local(Rule::fact(lit("p", vec![Term::atom("b")]))); // 4
        let c = CompiledKb::compile(&kb);
        let ids = |goal: &Literal| -> Vec<u32> {
            c.dispatch(goal).iter().map(|&i| c.clause(i).id.0).collect()
        };
        assert_eq!(ids(&lit("p", vec![Term::atom("a")])), vec![0, 1, 2, 3]);
        assert_eq!(ids(&lit("p", vec![Term::atom("b")])), vec![0, 2, 4]);
        // Unknown constant: only the var-headed chain.
        assert_eq!(ids(&lit("p", vec![Term::atom("z")])), vec![0, 2]);
        // Open goal: everything.
        assert_eq!(ids(&lit("p", vec![Term::var("Q")])), vec![0, 1, 2, 3, 4]);
        // Unknown predicate: nothing.
        assert_eq!(ids(&lit("q", vec![Term::var("Q")])), Vec::<u32>::new());
    }

    #[test]
    fn release_pattern_self_rules_are_not_compiled() {
        let head = lit("cred", vec![Term::var("X")]);
        let mut kb = KnowledgeBase::new();
        kb.add_local(Rule::horn(head.clone(), vec![head.clone()]));
        kb.add_local(Rule::fact(lit("cred", vec![Term::atom("a")])));
        let c = CompiledKb::compile(&kb);
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.clause(c.dispatch(&lit("cred", vec![Term::atom("a")]))[0])
                .id,
            RuleId(1)
        );
    }

    #[test]
    fn fit_full_prefix_stale() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(Rule::fact(lit("p", vec![Term::atom("a")])));
        let c = CompiledKb::compile(&kb);
        assert_eq!(c.fit(&kb), CompiledFit::Full);

        kb.add_local(Rule::fact(lit("p", vec![Term::atom("b")])));
        assert_eq!(c.fit(&kb), CompiledFit::Prefix);
        assert_eq!(c.prefix_len(), 1);

        let mut other = KnowledgeBase::new();
        other.add_local(Rule::fact(lit("q", vec![Term::atom("a")])));
        assert_eq!(c.fit(&other), CompiledFit::Stale);
    }

    #[test]
    fn compiled_solver_answers_match_interpreter() {
        let mut kb = KnowledgeBase::new();
        for i in 0..5 {
            kb.add_local(Rule::fact(lit(
                "edge",
                vec![Term::int(i), Term::int(i + 1)],
            )));
        }
        kb.add_local(Rule::horn(
            lit("reach", vec![Term::var("X"), Term::var("Y")]),
            vec![lit("edge", vec![Term::var("X"), Term::var("Y")])],
        ));
        kb.add_local(Rule::horn(
            lit("reach", vec![Term::var("X"), Term::var("Z")]),
            vec![
                lit("edge", vec![Term::var("X"), Term::var("Y")]),
                lit("reach", vec![Term::var("Y"), Term::var("Z")]),
            ],
        ));
        let me = PeerId::new("me");
        let goal = lit("reach", vec![Term::int(0), Term::var("T")]);

        let mut interp = Solver::new(&kb, me);
        let expected: Vec<String> = interp
            .solve(std::slice::from_ref(&goal))
            .iter()
            .map(|s| s.subst.apply_literal(&goal).to_string())
            .collect();

        let compiled = Arc::new(CompiledKb::compile(&kb));
        let mut cs = CompiledSolver::new(&kb, me, compiled);
        let got: Vec<String> = cs
            .solve(std::slice::from_ref(&goal))
            .iter()
            .map(|s| s.subst.apply_literal(&goal).to_string())
            .collect();
        assert_eq!(got, expected);
        assert!(cs.stats().compiled_dispatches > 0, "compiled path ran");
        assert_eq!(cs.stats().compiled_stale, 0);
    }

    #[test]
    fn stale_compiled_kb_is_never_consulted() {
        // Compile one KB, then hand the solver a *different* KB with the
        // same predicates: answers must come from the real KB via the
        // interpreter, and the compiled artifact must never be touched.
        let mut kb1 = KnowledgeBase::new();
        kb1.add_local(Rule::fact(lit("p", vec![Term::atom("old")])));
        let compiled = Arc::new(CompiledKb::compile(&kb1));

        let mut kb2 = KnowledgeBase::new();
        kb2.add_local(Rule::fact(lit("p", vec![Term::atom("new")])));
        kb2.add_local(Rule::fact(lit("p", vec![Term::atom("newer")])));

        let me = PeerId::new("me");
        let goal = lit("p", vec![Term::var("X")]);
        let mut s = Solver::new(&kb2, me).with_compiled(compiled);
        let answers: Vec<String> = s
            .solve(std::slice::from_ref(&goal))
            .iter()
            .map(|sol| sol.subst.apply_literal(&goal).to_string())
            .collect();
        assert_eq!(answers, vec!["p(new)", "p(newer)"]);
        assert_eq!(s.stats().compiled_dispatches, 0, "stale KB consulted");
        assert!(s.stats().compiled_stale > 0, "staleness not recorded");
    }

    #[test]
    fn prefix_fit_resolves_appended_rules_interpretively() {
        let mut kb = KnowledgeBase::new();
        kb.add_local(Rule::fact(lit("p", vec![Term::atom("compiled")])));
        let compiled = Arc::new(CompiledKb::compile(&kb));
        // Appends after compilation — e.g. credentials pushed mid-negotiation.
        kb.add_local(Rule::fact(lit("p", vec![Term::atom("appended")])));

        let me = PeerId::new("me");
        let goal = lit("p", vec![Term::var("X")]);
        let mut s = Solver::new(&kb, me).with_compiled(compiled);
        let answers: Vec<String> = s
            .solve(std::slice::from_ref(&goal))
            .iter()
            .map(|sol| sol.subst.apply_literal(&goal).to_string())
            .collect();
        // Clause order preserved: compiled prefix first, then the suffix.
        assert_eq!(answers, vec!["p(compiled)", "p(appended)"]);
        assert!(s.stats().compiled_dispatches > 0);
        assert_eq!(s.stats().compiled_stale, 0);
    }

    #[test]
    fn engine_config_compiled_autocompiles() {
        let kb = kb_from(vec![Rule::fact(lit("p", vec![Term::atom("a")]))]);
        let me = PeerId::new("me");
        let goal = lit("p", vec![Term::var("X")]);
        let mut s = Solver::new(&kb, me).with_config(EngineConfig {
            compiled: true,
            ..EngineConfig::default()
        });
        let answers = s.solve(std::slice::from_ref(&goal));
        assert_eq!(answers.len(), 1);
        assert!(s.stats().compiled_dispatches > 0, "auto-compiled path ran");
    }
}
