//! SLD resolution over a peer's knowledge base, with proof construction
//! and a pluggable hook for remote (delegated) goals.
//!
//! This is the Rust equivalent of the paper's Prolog meta-interpreters
//! (§6): leftmost goal selection, clause order as stored in the KB, plus
//! three guards MINERVA lacked — a depth bound, a resolution-step budget,
//! and an ancestor *variant* loop check (a goal identical up to variable
//! renaming to an open ancestor goal is pruned).
//!
//! ## Authority handling (paper §3.1 / §3.2)
//!
//! For a selected goal `g` whose outermost authority (the last `@` in
//! program order) is:
//!
//! * **the local peer** — the authority is stripped and the inner literal
//!   proved locally (`lit @ Self ≡ lit`);
//! * **another peer `P`** — local clauses are tried first (cached signed
//!   rules let a peer "mimic the reasoning processes of other peers");
//!   if no local clause unifies and a [`RemoteHook`] is installed, the
//!   engine asks the hook to resolve `g` at `P`. The hook is how the
//!   negotiation layer turns goals into network queries;
//! * **a variable** — only local clauses are tried (the negotiation layer's
//!   authority database binds authorities *before* they are consulted,
//!   §4.2's `authority(purchaseApproved, Authority)` pattern).
//!
//! Every solution carries a [`Proof`] tree recording which rules, builtins
//! and remote answers established it — the paper's "distributed certified
//! proof" — from which the negotiation layer extracts the credentials to
//! disclose.

use crate::builtins::{eval_builtin_in, BuiltinOutcomeIn};
use crate::compile::{CompiledFit, CompiledKb};
use crate::table::{AnswerTable, ConcurrentTable, Disposition, Probe, TableStats, TabledAnswer};
use peertrust_core::{
    unify_literals_in, Bindings, FxHashMap, KnowledgeBase, Literal, PeerId, ResolveCache, RuleId,
    Subst, Term, TrailStats, Var,
};
use peertrust_telemetry::{Field, Telemetry};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// A shareable answer table: pass the same handle to successive solvers
/// over the *same* knowledge base to keep memoized answers warm across
/// [`Solver::solve`] calls.
pub type SharedTable = Rc<RefCell<AnswerTable>>;

/// The solver's tabling backend: either the single-threaded
/// `Rc<RefCell<AnswerTable>>` (the default — zero synchronization) or an
/// `Arc<ConcurrentTable>` shared between solver threads evaluating the
/// same knowledge base.
///
/// Both variants expose the same probe/begin/complete protocol, so the
/// solver's tabling step is written once against this handle. The `Local`
/// arm compiles down to the exact `RefCell` borrow sequence the solver
/// used before the handle existed; no atomics or locks appear on the
/// single-threaded path.
#[derive(Clone)]
pub enum TableHandle {
    /// Single-threaded table (what `config.tabling` creates lazily).
    Local(SharedTable),
    /// Sharded, lock-per-shard table for multi-threaded batch workloads.
    Concurrent(Arc<ConcurrentTable>),
}

impl TableHandle {
    /// Classify a goal variant: reusable, inline-only, or fresh. Counts
    /// the hit / inline-fallback on the matching branch.
    fn probe(&self, key: &Literal) -> Probe {
        match self {
            TableHandle::Local(t) => {
                let mut t = t.borrow_mut();
                if t.in_progress(key) || t.disposition(key) == Some(Disposition::Incomplete) {
                    t.note_inline_fallback();
                    return Probe::Inline;
                }
                match t.lookup(key) {
                    Some(answers) => Probe::Reuse(answers.to_vec()),
                    None => Probe::Fresh,
                }
            }
            TableHandle::Concurrent(t) => t.probe(key),
        }
    }

    fn begin(&self, key: Literal) {
        match self {
            TableHandle::Local(t) => t.borrow_mut().begin(key),
            TableHandle::Concurrent(t) => t.begin(key),
        }
    }

    fn complete(&self, key: Literal, disposition: Disposition, answers: Vec<TabledAnswer>) {
        match self {
            TableHandle::Local(t) => t.borrow_mut().complete(key, disposition, answers),
            TableHandle::Concurrent(t) => t.complete(key, disposition, answers),
        }
    }

    fn note_inline_fallback(&self) {
        match self {
            TableHandle::Local(t) => t.borrow_mut().note_inline_fallback(),
            TableHandle::Concurrent(t) => t.note_inline_fallback(),
        }
    }

    /// Counter snapshot (shared across all holders of this handle).
    pub fn stats(&self) -> TableStats {
        match self {
            TableHandle::Local(t) => t.borrow().stats(),
            TableHandle::Concurrent(t) => t.stats(),
        }
    }

    /// Number of variants with a recorded entry.
    pub fn len(&self) -> usize {
        match self {
            TableHandle::Local(t) => t.borrow().len(),
            TableHandle::Concurrent(t) => t.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total answers stored across all entries.
    pub fn answer_count(&self) -> usize {
        match self {
            TableHandle::Local(t) => t.borrow().answer_count(),
            TableHandle::Concurrent(t) => t.answer_count(),
        }
    }
}

/// When to consult the remote hook for a goal routed to another peer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RemoteFallback {
    /// Never go remote: purely local evaluation.
    Never,
    /// Go remote only when no local clause unifies with the goal
    /// (default — avoids redundant network queries when a cached signed
    /// rule already covers the goal).
    OnlyIfNoLocalClause,
    /// Always also ask the remote peer (completeness experiments).
    Always,
}

/// Engine tuning and guard parameters.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Maximum proof depth (rule-application nesting).
    pub max_depth: usize,
    /// Stop after this many solutions.
    pub max_solutions: usize,
    /// Hard budget on resolution steps (guards cyclic policies, E11).
    pub max_steps: u64,
    /// Prune goals that are variants of an open ancestor goal.
    pub ancestor_loop_check: bool,
    /// Remote consultation policy.
    pub remote_fallback: RemoteFallback,
    /// Memoize answers to authority-free goals in an [`AnswerTable`]
    /// (see `crate::table` for the completion policy and soundness
    /// argument). Off by default: tabling trades memory for speed and is
    /// only sound across solve calls while the KB grows monotonically.
    pub tabling: bool,
    /// Cap on answers collected per tabled variant; a variant that hits
    /// the cap is recorded incomplete and resolved inline thereafter.
    pub table_max_answers: usize,
    /// Resolve against a compiled (WAM-lite bytecode) view of the KB
    /// (see `crate::compile`). If no compiled artifact was attached via
    /// [`Solver::with_compiled`], the solver compiles the KB itself on
    /// first solve. Off by default; answers are identical either way —
    /// the compiled path only changes how clause heads are selected and
    /// matched.
    pub compiled: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_depth: 128,
            max_solutions: 64,
            max_steps: 1_000_000,
            ancestor_loop_check: true,
            remote_fallback: RemoteFallback::OnlyIfNoLocalClause,
            tabling: false,
            table_max_answers: 512,
            compiled: false,
        }
    }
}

/// Callback for goals delegated to other peers.
pub trait RemoteHook {
    /// Resolve `goal` (whose outermost authority is `peer`) remotely.
    ///
    /// The implementation sends `goal.strip_outer_authority()` to `peer`
    /// and returns the answer instances of that *inner* literal. An empty
    /// vector means the peer produced no answers (or refused).
    fn resolve_remote(&mut self, peer: PeerId, inner_goal: &Literal) -> Vec<Literal>;
}

/// A no-op hook: remote goals simply fail.
pub struct NoRemote;

impl RemoteHook for NoRemote {
    fn resolve_remote(&mut self, _peer: PeerId, _goal: &Literal) -> Vec<Literal> {
        Vec::new()
    }
}

/// How one proof node was established.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// Application of a KB rule (children prove its body).
    Rule(RuleId),
    /// A builtin evaluation.
    Builtin,
    /// `lit @ Self` stripped to `lit` (single child proves the inner goal).
    SelfAuthority,
    /// Answered by a remote peer (leaf; the remote peer holds the sub-proof).
    Remote(PeerId),
    /// Negation as failure: the negated goal was exhaustively refuted
    /// against the local knowledge base (leaf).
    Negation,
}

/// A node in a certified proof tree.
///
/// Children are `Arc`-shared: a tabled answer's proof is reused at every
/// call site, and solution extraction resolves trees copy-on-write — so
/// an unchanged (already-ground) subtree is one pointer bump instead of a
/// deep rebuild. `Proof` itself stays a by-value type at the API
/// boundary ([`Solution::proofs`], [`TabledAnswer`]); only the interior
/// edges are shared.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Proof {
    /// The goal this node establishes, resolved under the final answer
    /// substitution.
    pub goal: Literal,
    pub step: ProofStep,
    pub children: Vec<Arc<Proof>>,
}

impl Proof {
    /// Every KB rule used anywhere in the proof.
    pub fn used_rules(&self) -> Vec<RuleId> {
        let mut out = Vec::new();
        self.walk(&mut |p| {
            if let ProofStep::Rule(id) = p.step {
                if !out.contains(&id) {
                    out.push(id);
                }
            }
        });
        out
    }

    /// Every remote answer `(peer, goal)` the proof depends on.
    pub fn remote_dependencies(&self) -> Vec<(PeerId, Literal)> {
        let mut out = Vec::new();
        self.walk(&mut |p| {
            if let ProofStep::Remote(peer) = p.step {
                out.push((peer, p.goal.clone()));
            }
        });
        out
    }

    /// Total node count.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|c| c.size()).sum::<usize>()
    }

    /// Tree height: 1 for a leaf.
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    fn walk(&self, f: &mut impl FnMut(&Proof)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }

    /// Resolve every goal in the tree against `bs` through a shared
    /// memo: the tree for a depth-k answer revisits the same binding
    /// chains at every level, so uncached resolution is quadratic in k.
    fn resolve(&self, bs: &Bindings, cache: &mut ResolveCache) -> Proof {
        // Shallow clone when nothing resolves differently — ground
        // subtrees (the common case once answers are concrete) are
        // shared, not rebuilt.
        self.resolve_cow(bs, cache).unwrap_or_else(|| self.clone())
    }

    /// Copy-on-write resolution: `None` means every goal in the tree is
    /// already fully resolved under `bs`, so the caller can share `self`.
    fn resolve_cow(&self, bs: &Bindings, cache: &mut ResolveCache) -> Option<Proof> {
        let goal = bs.apply_literal_memo_opt(&self.goal, cache);
        let mut children: Option<Vec<Arc<Proof>>> = None;
        for (i, c) in self.children.iter().enumerate() {
            match c.resolve_cow(bs, cache) {
                Some(changed) => children
                    .get_or_insert_with(|| self.children[..i].to_vec())
                    .push(Arc::new(changed)),
                None => {
                    if let Some(v) = children.as_mut() {
                        v.push(Arc::clone(c));
                    }
                }
            }
        }
        if goal.is_none() && children.is_none() {
            return None;
        }
        Some(Proof {
            goal: goal.unwrap_or_else(|| self.goal.clone()),
            step: self.step.clone(),
            children: children.unwrap_or_else(|| self.children.clone()),
        })
    }
}

/// One answer to a query.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Bindings projected onto the query's variables.
    pub subst: Subst,
    /// One proof tree per top-level goal.
    pub proofs: Vec<Proof>,
}

/// Evaluation statistics (inputs to experiments E8/E11).
#[derive(Clone, Copy, Default, Debug)]
pub struct Stats {
    /// Resolution steps (goal selections).
    pub steps: u64,
    /// Remote hook invocations.
    pub remote_calls: u64,
    /// Branches pruned by the depth bound.
    pub depth_cutoffs: u64,
    /// Branches pruned by the ancestor variant check.
    pub loop_prunes: u64,
    /// Candidate rules whose heads were tried against a goal.
    pub rule_tries: u64,
    /// Head/answer unification attempts.
    pub unify_attempts: u64,
    /// Builtin evaluations.
    pub builtin_evals: u64,
    /// Trail bindings written (slot + named), across all derivations.
    pub trail_binds: u64,
    /// Choice-point rollbacks performed.
    pub trail_rollbacks: u64,
    /// Trail entries undone by rollbacks (the work backtracking actually
    /// did — compare with what clone-per-branch would have copied).
    pub trail_undone: u64,
    /// High-water mark of the trail length.
    pub trail_peak: u64,
    /// High-water mark of the dense variable-slot vector.
    pub slot_peak: u64,
    /// Switch-on-constant dispatches into a compiled KB.
    pub compiled_dispatches: u64,
    /// Compiled head matches that succeeded.
    pub compiled_head_matches: u64,
    /// Compiled head matches that failed.
    pub compiled_head_fails: u64,
    /// Solves that found their compiled KB stale and fell back to full
    /// interpretation (should be 0 in a correctly wired deployment).
    pub compiled_stale: u64,
    /// Put instructions executed to materialize compiled body goals.
    pub compiled_body_instrs: u64,
    /// Term cells pushed through the binding store's bump heap.
    pub heap_cells: u64,
    /// Bytes those cells occupy.
    pub heap_bytes: u64,
    /// Heap region resets (one per materialized goal).
    pub heap_resets: u64,
    /// Whether the step budget was exhausted (result may be incomplete).
    pub step_budget_exhausted: bool,
}

impl Stats {
    /// Fold one binding store's counters into the evaluation stats.
    fn absorb_trail(&mut self, t: TrailStats) {
        self.trail_binds += t.slot_binds + t.named_binds;
        self.trail_rollbacks += t.rollbacks;
        self.trail_undone += t.undone;
        self.trail_peak = self.trail_peak.max(t.peak_trail);
        self.slot_peak = self.slot_peak.max(t.peak_slots);
    }

    /// Fold one binding store's term-heap counters into the stats.
    fn absorb_heap(&mut self, h: peertrust_core::HeapStats) {
        self.heap_cells += h.cells;
        self.heap_bytes += h.bytes;
        self.heap_resets += h.resets;
    }
}

/// The SLD solver. Borrow a KB, configure, and call [`Solver::solve`].
pub struct Solver<'a> {
    kb: &'a KnowledgeBase,
    self_id: PeerId,
    config: EngineConfig,
    hook: Option<&'a mut dyn RemoteHook>,
    rename_counter: u32,
    stats: Stats,
    telemetry: Telemetry,
    table: Option<TableHandle>,
    /// Compiled view of `kb` (attached or auto-compiled when
    /// `config.compiled`). Consulted only after a fingerprint fit check.
    compiled: Option<Arc<CompiledKb>>,
    /// Cached fit verdict: how many leading KB rules the compiled
    /// artifact covers (0 = not consulted). Sound to cache because the
    /// solver borrows the KB immutably for its whole lifetime.
    compiled_cover: Option<usize>,
}

/// Work items on the evaluation agenda.
enum GoalItem {
    /// Prove this literal at the given depth.
    Lit(Literal, usize),
    /// Prove the `idx`-th body goal of a compiled clause instantiated at
    /// frame `base`, at the given depth. The literal is *not* built when
    /// the item is enqueued — the put program runs at selection time,
    /// against the then-current bindings, which both skips the
    /// copy-on-write `body_instance` instantiation and replaces the
    /// interpreter's `apply_literal` resolution of the selected goal.
    Compiled {
        goals: Arc<[crate::compile::CompiledGoal]>,
        idx: usize,
        base: u32,
        depth: usize,
    },
    /// Marker: the previous `arity` proofs complete `goal` via `step`.
    Fold {
        goal: Literal,
        step: ProofStep,
        arity: usize,
    },
}

/// The evaluation agenda as a persistent cons list. Resolving a goal
/// against a clause pushes the clause body in front of the `Rc`-shared
/// continuation; the continuation itself — O(depth) items on recursive
/// programs — is never copied. (With a `Vec` agenda, every successful
/// head match cloned the whole remainder, which made deep chains
/// quadratic in allocations.)
type Agenda = Option<Rc<AgendaNode>>;

struct AgendaNode {
    item: GoalItem,
    next: Agenda,
}

fn cons(item: GoalItem, next: Agenda) -> Agenda {
    Some(Rc::new(AgendaNode { item, next }))
}

enum Flow {
    Continue,
    Stop,
}

impl<'a> Solver<'a> {
    pub fn new(kb: &'a KnowledgeBase, self_id: PeerId) -> Solver<'a> {
        Solver {
            kb,
            self_id,
            config: EngineConfig::default(),
            hook: None,
            rename_counter: 0,
            stats: Stats::default(),
            telemetry: Telemetry::disabled(),
            table: None,
            compiled: None,
            compiled_cover: None,
        }
    }

    pub fn with_config(mut self, config: EngineConfig) -> Solver<'a> {
        self.config = config;
        self
    }

    pub fn with_hook(mut self, hook: &'a mut dyn RemoteHook) -> Solver<'a> {
        self.hook = Some(hook);
        self
    }

    /// Attach a compiled view of the KB (see `crate::compile`) and turn
    /// the compiled path on. The artifact is consulted only while its
    /// fingerprint still matches a prefix of the KB; a stale artifact is
    /// ignored (counted in `Stats::compiled_stale`), never wrong.
    pub fn with_compiled(mut self, compiled: Arc<CompiledKb>) -> Solver<'a> {
        self.compiled = Some(compiled);
        self.compiled_cover = None;
        self.config.compiled = true;
        self
    }

    /// [`Solver::with_compiled`] for an optional handle: `None` leaves
    /// the solver fully interpreted. Convenient for call sites threading
    /// a peer's maybe-compiled KB through.
    pub fn with_compiled_opt(self, compiled: Option<Arc<CompiledKb>>) -> Solver<'a> {
        match compiled {
            Some(c) => self.with_compiled(c),
            None => self,
        }
    }

    /// Attach a telemetry pipeline: each [`Solver::solve`] call becomes an
    /// `engine.solve` span, and the evaluation [`Stats`] are flushed into
    /// the metrics registry when it returns.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Solver<'a> {
        self.telemetry = telemetry;
        self
    }

    /// Attach a (possibly pre-warmed) answer table. Implies nothing about
    /// `config.tabling` — the flag still controls whether the table is
    /// consulted. Sharing a table between solvers is sound only while
    /// they evaluate the *same, monotonically growing* knowledge base for
    /// the same peer; call [`AnswerTable::clear`] on any non-monotone
    /// change (rule retraction or body edit).
    pub fn with_table(mut self, table: SharedTable) -> Solver<'a> {
        self.table = Some(TableHandle::Local(table));
        self
    }

    /// Attach a thread-safe answer table shared with other solvers (each
    /// on its own thread) over the *same* knowledge base. Same soundness
    /// discipline as [`Solver::with_table`]; see
    /// [`ConcurrentTable`] for the concurrency argument.
    pub fn with_concurrent_table(mut self, table: Arc<ConcurrentTable>) -> Solver<'a> {
        self.table = Some(TableHandle::Concurrent(table));
        self
    }

    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// The single-threaded answer table, if tabling ever ran (or one was
    /// attached via [`Solver::with_table`]). `None` when a concurrent
    /// table is attached — use [`Solver::table_handle`] for either kind.
    pub fn table(&self) -> Option<SharedTable> {
        match &self.table {
            Some(TableHandle::Local(t)) => Some(t.clone()),
            _ => None,
        }
    }

    /// The tabling backend, whichever kind is attached.
    pub fn table_handle(&self) -> Option<TableHandle> {
        self.table.clone()
    }

    /// Snapshot of the answer-table counters (zeroes when tabling is off).
    pub fn table_stats(&self) -> TableStats {
        self.table.as_ref().map(|t| t.stats()).unwrap_or_default()
    }

    /// Prove the conjunction `goals`, returning up to
    /// `config.max_solutions` answers with proofs.
    pub fn solve(&mut self, goals: &[Literal]) -> Vec<Solution> {
        if self.config.tabling && self.table.is_none() {
            self.table = Some(TableHandle::Local(Rc::new(
                RefCell::new(AnswerTable::new()),
            )));
        }
        if self.config.compiled && self.compiled.is_none() {
            // No artifact attached: compile the KB once for this solver.
            self.compiled = Some(Arc::new(CompiledKb::compile(self.kb)));
            self.compiled_cover = None;
        }
        if self.compiled_cover.is_none() {
            self.compiled_cover = Some(match &self.compiled {
                Some(c) => match c.fit(self.kb) {
                    CompiledFit::Full | CompiledFit::Prefix => c.prefix_len(),
                    CompiledFit::Stale => {
                        self.stats.compiled_stale += 1;
                        0
                    }
                },
                None => 0,
            });
        }
        let mut query_vars: Vec<Var> = Vec::new();
        for g in goals {
            g.collect_vars(&mut query_vars);
        }
        query_vars.dedup();

        let table_before = self.table_stats();
        let (span, before) = if self.telemetry.enabled() {
            let goal_text = goals
                .iter()
                .map(|g| g.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let span = self.telemetry.span_start(
                0,
                0,
                "engine.solve",
                vec![Field::str("goal", goal_text)],
            );
            (span, self.stats)
        } else {
            (peertrust_telemetry::SpanId::NONE, Stats::default())
        };

        let mut agenda: Agenda = None;
        for g in goals.iter().rev() {
            agenda = cons(GoalItem::Lit(g.clone(), 0), agenda);
        }
        let mut out = Vec::new();
        let mut anc: Vec<Literal> = Vec::new();
        let mut acc: Vec<Proof> = Vec::new();
        // Slot watermark: every variable version that exists before the
        // derivation (query variables included) must sit at or below the
        // store's base, and every in-derivation rename above it.
        let query_max = query_vars.iter().map(|v| v.version).max().unwrap_or(0);
        self.rename_counter = self.rename_counter.max(query_max);
        let mut bs = Bindings::new(self.rename_counter);
        let _ = self.prove(&agenda, &mut bs, &mut anc, &mut acc, &mut out, &query_vars);
        self.stats.absorb_trail(bs.take_stats());
        self.stats.absorb_heap(bs.take_heap_stats());

        if self.telemetry.enabled() {
            self.flush_stats_delta(&before, &out);
            self.flush_table_delta(&table_before);
            self.telemetry
                .span_end(0, span, 0, vec![Field::u64("solutions", out.len() as u64)]);
        }
        out
    }

    /// Flush answer-table counter deltas and size histograms.
    fn flush_table_delta(&self, before: &TableStats) {
        let Some(t) = self.table.as_ref() else {
            return;
        };
        let d = t.stats();
        self.telemetry
            .incr("engine.table.hits", d.hits - before.hits);
        self.telemetry
            .incr("engine.table.misses", d.misses - before.misses);
        self.telemetry
            .incr("engine.table.inserts", d.inserts - before.inserts);
        self.telemetry
            .incr("engine.table.incomplete", d.incomplete - before.incomplete);
        self.telemetry.incr(
            "engine.table.inline_fallbacks",
            d.inline_fallbacks - before.inline_fallbacks,
        );
        self.telemetry
            .observe("engine.table.variants", t.len() as u64);
        self.telemetry
            .observe("engine.table.answers", t.answer_count() as u64);
    }

    /// Flush the stats accumulated since `before` into the metrics
    /// registry, plus per-solve histograms over the solution set.
    fn flush_stats_delta(&self, before: &Stats, out: &[Solution]) {
        let d = &self.stats;
        self.telemetry.incr("engine.steps", d.steps - before.steps);
        self.telemetry
            .incr("engine.rule_tries", d.rule_tries - before.rule_tries);
        self.telemetry.incr(
            "engine.unify_attempts",
            d.unify_attempts - before.unify_attempts,
        );
        self.telemetry
            .incr("engine.builtins", d.builtin_evals - before.builtin_evals);
        self.telemetry
            .incr("engine.remote_hops", d.remote_calls - before.remote_calls);
        self.telemetry.incr(
            "engine.depth_cutoffs",
            d.depth_cutoffs - before.depth_cutoffs,
        );
        self.telemetry
            .incr("engine.loop_prunes", d.loop_prunes - before.loop_prunes);
        self.telemetry
            .incr("engine.trail.binds", d.trail_binds - before.trail_binds);
        self.telemetry.incr(
            "engine.trail.rollbacks",
            d.trail_rollbacks - before.trail_rollbacks,
        );
        self.telemetry
            .incr("engine.trail.undone", d.trail_undone - before.trail_undone);
        self.telemetry.incr(
            "engine.compiled.dispatches",
            d.compiled_dispatches - before.compiled_dispatches,
        );
        self.telemetry.incr(
            "engine.compiled.head_matches",
            d.compiled_head_matches - before.compiled_head_matches,
        );
        self.telemetry.incr(
            "engine.compiled.head_fails",
            d.compiled_head_fails - before.compiled_head_fails,
        );
        self.telemetry.incr(
            "engine.compiled.stale",
            d.compiled_stale - before.compiled_stale,
        );
        self.telemetry.incr(
            "engine.compiled.body_instrs",
            d.compiled_body_instrs - before.compiled_body_instrs,
        );
        self.telemetry
            .incr("engine.heap.cells", d.heap_cells - before.heap_cells);
        self.telemetry
            .incr("engine.heap.bytes", d.heap_bytes - before.heap_bytes);
        self.telemetry
            .incr("engine.heap.resets", d.heap_resets - before.heap_resets);
        self.telemetry.observe("engine.trail.peak", d.trail_peak);
        self.telemetry
            .observe("engine.alloc.slot_peak", d.slot_peak);
        self.telemetry.observe("engine.solutions", out.len() as u64);
        let depth = out
            .iter()
            .flat_map(|sol| sol.proofs.iter().map(Proof::depth))
            .max()
            .unwrap_or(0);
        self.telemetry.observe("engine.proof_depth", depth as u64);
    }

    /// Is the conjunction provable at all?
    pub fn provable(&mut self, goals: &[Literal]) -> bool {
        let saved = self.config.max_solutions;
        self.config.max_solutions = 1;
        let r = !self.solve(goals).is_empty();
        self.config.max_solutions = saved;
        r
    }

    /// The resolution loop. Contract: `bs` is returned in exactly the
    /// state it was received in — every binding a branch writes is rolled
    /// back (O(bindings undone)) before the next branch or the return,
    /// which is what replaced the clone-per-choice-point `Subst`.
    fn prove(
        &mut self,
        agenda: &Agenda,
        bs: &mut Bindings,
        anc: &mut Vec<Literal>,
        acc: &mut Vec<Proof>,
        out: &mut Vec<Solution>,
        query_vars: &[Var],
    ) -> Flow {
        if self.stats.step_budget_exhausted {
            return Flow::Stop;
        }
        let Some(node) = agenda else {
            // Whole conjunction proven.
            let mut cache = ResolveCache::default();
            out.push(Solution {
                subst: bs.project(query_vars),
                proofs: acc.iter().map(|p| p.resolve(bs, &mut cache)).collect(),
            });
            return if out.len() >= self.config.max_solutions {
                Flow::Stop
            } else {
                Flow::Continue
            };
        };
        let (item, rest) = (&node.item, &node.next);

        match item {
            GoalItem::Fold { goal, step, arity } => {
                // Assemble the proof node for `goal` from its children.
                let children = acc
                    .split_off(acc.len() - arity)
                    .into_iter()
                    .map(Arc::new)
                    .collect();
                acc.push(Proof {
                    goal: goal.clone(),
                    step: step.clone(),
                    children,
                });
                // The goal's descendant scope ends here.
                let popped = anc.pop();
                let flow = self.prove(rest, bs, anc, acc, out, query_vars);
                if let Some(g) = popped {
                    anc.push(g);
                }
                let node = acc.pop().expect("fold node present");
                // Unwind: children go back on the accumulator by value.
                // A child whose `Arc` was captured by a solution above
                // falls back to a shallow clone (its own children stay
                // shared) — the unique case moves with no copy at all.
                acc.extend(
                    node.children
                        .into_iter()
                        .map(|c| Arc::try_unwrap(c).unwrap_or_else(|a| (*a).clone())),
                );
                flow
            }
            GoalItem::Lit(goal, depth) => {
                self.stats.steps += 1;
                if self.stats.steps > self.config.max_steps {
                    self.stats.step_budget_exhausted = true;
                    return Flow::Stop;
                }
                let goal = bs.apply_literal(goal);
                self.prove_goal(goal, *depth, rest, bs, anc, acc, out, query_vars)
            }
            GoalItem::Compiled {
                goals,
                idx,
                base,
                depth,
            } => {
                self.stats.steps += 1;
                if self.stats.steps > self.config.max_steps {
                    self.stats.step_budget_exhausted = true;
                    return Flow::Stop;
                }
                // Run the put program: this *is* the `apply_literal`
                // resolution of the selected goal, fused with body
                // instantiation.
                let g = &goals[*idx];
                self.stats.compiled_body_instrs += g.instr_count() as u64;
                let goal = g.materialize(*base, bs);
                self.prove_goal(goal, *depth, rest, bs, anc, acc, out, query_vars)
            }
        }
    }

    /// Handle one selected goal, already resolved under `bs` (via
    /// `apply_literal` on the interpreted path or put-program
    /// materialization on the compiled path — the two produce identical
    /// literals, which is what keeps the lanes byte-identical).
    #[allow(clippy::too_many_arguments)]
    fn prove_goal(
        &mut self,
        goal: Literal,
        depth: usize,
        rest: &Agenda,
        bs: &mut Bindings,
        anc: &mut Vec<Literal>,
        acc: &mut Vec<Proof>,
        out: &mut Vec<Solution>,
        query_vars: &[Var],
    ) -> Flow {
        // Negation as failure (paper §3.1: "Definite Horn clauses
        // can be easily extended to include negation as failure").
        // `not(p(args...))` succeeds iff the *ground, local* goal
        // `p(args...)` is unprovable. Non-ground negations flounder
        // (fail); remote goals are never negated — NAF over another
        // peer's silence would conflate "no" with "won't say".
        if goal.pred.as_str() == "not" && goal.args.len() == 1 {
            // `goal` is fully resolved already (`apply_literal`
            // above), so no walk is needed here.
            let inner = match &goal.args[0] {
                Term::Compound(f, args) => Some(Literal::new(*f, args.to_vec())),
                Term::Atom(a) => Some(Literal::new(*a, vec![])),
                _ => None,
            };
            let Some(inner) = inner else {
                return Flow::Continue; // flounder: not bound to a goal
            };
            if !inner.is_ground() {
                return Flow::Continue; // flounder: non-ground negation
            }
            let refuted = {
                let mut sub = Solver::new(self.kb, self.self_id)
                    .with_config(EngineConfig {
                        max_solutions: 1,
                        remote_fallback: RemoteFallback::Never,
                        ..self.config
                    })
                    .with_compiled_opt(self.compiled.clone());
                // Same KB, same artifact: the fit verdict carries
                // over, sparing the sub-solve a re-fingerprint.
                sub.compiled_cover = self.compiled_cover;
                let proved = sub.provable(std::slice::from_ref(&inner));
                self.stats.steps += sub.stats.steps;
                self.stats.rule_tries += sub.stats.rule_tries;
                self.stats.unify_attempts += sub.stats.unify_attempts;
                self.stats.builtin_evals += sub.stats.builtin_evals;
                self.stats.compiled_body_instrs += sub.stats.compiled_body_instrs;
                self.stats.heap_cells += sub.stats.heap_cells;
                self.stats.heap_bytes += sub.stats.heap_bytes;
                self.stats.heap_resets += sub.stats.heap_resets;
                !proved
            };
            if !refuted {
                return Flow::Continue;
            }
            return self.alternative(
                &goal,
                ProofStep::Negation,
                &[],
                depth,
                rest,
                bs,
                anc,
                acc,
                out,
                query_vars,
            );
        }

        // Builtins: evaluated destructively; the checkpoint undoes
        // whatever `=` bound once the continuation is explored.
        if goal.is_builtin() {
            self.stats.builtin_evals += 1;
            let cp = bs.checkpoint();
            return match eval_builtin_in(&goal, bs) {
                BuiltinOutcomeIn::True => {
                    let flow = self.alternative(
                        &goal,
                        ProofStep::Builtin,
                        &[],
                        depth,
                        rest,
                        bs,
                        anc,
                        acc,
                        out,
                        query_vars,
                    );
                    bs.rollback(cp);
                    flow
                }
                BuiltinOutcomeIn::False | BuiltinOutcomeIn::IllTyped(_) => Flow::Continue,
            };
        }

        if depth >= self.config.max_depth {
            self.stats.depth_cutoffs += 1;
            return Flow::Continue;
        }

        // Ancestor loop check: prune variants of open goals. This
        // runs *before* the table lookup so cyclic programs behave
        // identically with tabling on or off.
        if self.config.ancestor_loop_check {
            let mut vmap: Vec<(Var, Var)> = Vec::new();
            if anc.iter().any(|a| variant_under(a, &goal, bs, &mut vmap)) {
                self.stats.loop_prunes += 1;
                return Flow::Continue;
            }
        }

        // Tabling: only authority-free goals — goals with a chain
        // may route to another peer and belong to the negotiation
        // layer's remote-answer cache, not this per-solver table.
        if self.config.tabling && goal.authority.is_empty() && self.table.is_some() {
            if let Some(flow) = self.tabled(&goal, rest, bs, anc, acc, out, query_vars) {
                return flow;
            }
            // `None`: variant in progress or incomplete — resolve
            // this occurrence inline below.
        }

        // Self-authority stripping: lit @ ... @ Self  ->  lit @ ...
        if goal.eval_peer() == Some(self.self_id) {
            let inner = goal.strip_outer_authority();
            return self.alternative(
                &goal,
                ProofStep::SelfAuthority,
                std::slice::from_ref(&inner),
                depth,
                rest,
                bs,
                anc,
                acc,
                out,
                query_vars,
            );
        }

        // Local clauses: the compiled prefix first (when a
        // compiled KB fits), then the uncompiled suffix
        // interpretively — together that is exactly clause
        // (insertion) order over the whole KB.
        let mut any_local_clause = false;
        if let Flow::Stop = self.local_clauses(
            &goal,
            &goal,
            depth,
            rest,
            bs,
            anc,
            acc,
            out,
            query_vars,
            &mut any_local_clause,
        ) {
            return Flow::Stop;
        }

        // §3.2 Self-closure: "For each Authority argument that has
        // not been specified explicitly ... we add '@ Self'". A
        // goal whose chain does not end at this peer can also be
        // established by clauses about the self-extended goal —
        // e.g. authority A0, asked the chainless `attr(X)`, answers
        // from its delegation rule with head `attr(X) @ "A0"`.
        if goal.eval_peer() != Some(self.self_id) {
            let extended = goal.clone().at(Term::peer(self.self_id));
            if let Flow::Stop = self.local_clauses(
                &goal,
                &extended,
                depth,
                rest,
                bs,
                anc,
                acc,
                out,
                query_vars,
                &mut any_local_clause,
            ) {
                return Flow::Stop;
            }
        }

        // Remote resolution.
        let remote_peer = goal.eval_peer().filter(|p| *p != self.self_id);
        let go_remote = match self.config.remote_fallback {
            RemoteFallback::Never => false,
            RemoteFallback::OnlyIfNoLocalClause => !any_local_clause,
            RemoteFallback::Always => true,
        };
        if let (Some(peer), true, Some(_)) = (remote_peer, go_remote, self.hook.as_ref()) {
            let inner = goal.strip_outer_authority();
            self.stats.remote_calls += 1;
            let answers = self
                .hook
                .as_mut()
                .expect("hook present")
                .resolve_remote(peer, &inner);
            for answer in answers {
                self.stats.unify_attempts += 1;
                let cp = bs.checkpoint();
                if !unify_literals_in(&inner, &answer, bs) {
                    continue;
                }
                // The proof node records the *inner* goal — what the
                // remote peer actually answered — so the negotiation
                // layer can match it against disclosed answers.
                let flow = self.alternative(
                    &inner,
                    ProofStep::Remote(peer),
                    &[],
                    depth,
                    rest,
                    bs,
                    anc,
                    acc,
                    out,
                    query_vars,
                );
                bs.rollback(cp);
                if let Flow::Stop = flow {
                    return Flow::Stop;
                }
            }
        }

        Flow::Continue
    }

    /// Try every local clause whose head could match `target`, in clause
    /// order: compiled-prefix clauses via switch-on-constant dispatch and
    /// get-instruction head matching, then the uncompiled suffix through
    /// the interpreted rename-and-unify path. `goal` is what proof nodes
    /// record (it differs from `target` on the §3.2 self-closure pass).
    /// Sets `*any` when at least one head unified.
    #[allow(clippy::too_many_arguments)]
    fn local_clauses(
        &mut self,
        goal: &Literal,
        target: &Literal,
        depth: usize,
        rest: &Agenda,
        bs: &mut Bindings,
        anc: &mut Vec<Literal>,
        acc: &mut Vec<Proof>,
        out: &mut Vec<Solution>,
        query_vars: &[Var],
        any: &mut bool,
    ) -> Flow {
        let prefix = self.compiled_cover.unwrap_or(0);
        if prefix > 0 {
            let compiled = self.compiled.clone().expect("cover implies artifact");
            self.stats.compiled_dispatches += 1;
            for &ci in compiled.dispatch(target) {
                let clause = compiled.clause(ci);
                self.stats.rule_tries += 1;
                self.stats.unify_attempts += 1;
                let base = self.rename_counter;
                let cp = bs.checkpoint();
                if !clause.match_head(base, target, bs) {
                    self.stats.compiled_head_fails += 1;
                    continue; // match_head rolled back already
                }
                self.stats.compiled_head_matches += 1;
                // Reserve the clause's frame only on a successful match
                // — the whole point of baking standardize-apart into the
                // frame layout.
                self.rename_counter += clause.nvars;
                *any = true;
                let flow = if compiled.has_bodies() {
                    // Body bytecode: enqueue put programs by reference;
                    // each goal is built at its own selection time.
                    self.alternative_compiled(
                        goal,
                        ProofStep::Rule(clause.id),
                        clause.goals(),
                        base,
                        depth,
                        rest,
                        bs,
                        anc,
                        acc,
                        out,
                        query_vars,
                    )
                } else {
                    // Heads-only mode: copy-on-write body instantiation.
                    let body = clause.body_instance(base);
                    self.alternative(
                        goal,
                        ProofStep::Rule(clause.id),
                        &body,
                        depth,
                        rest,
                        bs,
                        anc,
                        acc,
                        out,
                        query_vars,
                    )
                };
                bs.rollback(cp);
                if let Flow::Stop = flow {
                    return Flow::Stop;
                }
            }
            if self.kb.len() <= prefix {
                return Flow::Continue; // fully compiled, no suffix
            }
        }
        let candidates: Vec<_> = self
            .kb
            .candidates(target)
            .filter(|sr| sr.id.0 as usize >= prefix)
            .map(|sr| (sr.id, sr.rule.clone()))
            .collect();
        for (id, rule) in &candidates {
            // Release-pattern self-rules (`p $ ctx <- p`) are
            // derivationally inert — they exist purely as disclosure
            // licenses (paper §3.1) and are applied by the negotiation
            // layer. Skipping them here also keeps them from masking
            // remote resolution.
            if rule.body.len() == 1 && rule.body[0] == rule.head {
                continue;
            }
            self.stats.rule_tries += 1;
            let renamed = rule.rename_apart_indexed(&mut self.rename_counter);
            self.stats.unify_attempts += 1;
            let cp = bs.checkpoint();
            if !unify_literals_in(&renamed.head, target, bs) {
                continue;
            }
            *any = true;
            let flow = self.alternative(
                goal,
                ProofStep::Rule(*id),
                &renamed.body,
                depth,
                rest,
                bs,
                anc,
                acc,
                out,
                query_vars,
            );
            bs.rollback(cp);
            if let Flow::Stop = flow {
                return Flow::Stop;
            }
        }
        Flow::Continue
    }

    /// Explore one alternative for `goal`: prove `body` (at `depth + 1`),
    /// fold the results into a proof node, then continue with `rest`.
    #[allow(clippy::too_many_arguments)]
    fn alternative(
        &mut self,
        goal: &Literal,
        step: ProofStep,
        body: &[Literal],
        depth: usize,
        rest: &Agenda,
        bs: &mut Bindings,
        anc: &mut Vec<Literal>,
        acc: &mut Vec<Proof>,
        out: &mut Vec<Solution>,
        query_vars: &[Var],
    ) -> Flow {
        let mut agenda = cons(
            GoalItem::Fold {
                goal: goal.clone(),
                step,
                arity: body.len(),
            },
            rest.clone(),
        );
        for b in body.iter().rev() {
            agenda = cons(GoalItem::Lit(b.clone(), depth + 1), agenda);
        }
        anc.push(goal.clone());
        let flow = self.prove(&agenda, bs, anc, acc, out, query_vars);
        anc.pop();
        flow
    }

    /// [`Solver::alternative`] for a compiled clause: the body goes on
    /// the agenda as `(put program, index)` references into the shared
    /// clause — no literal is instantiated, cloned, or even touched until
    /// the goal is actually selected.
    #[allow(clippy::too_many_arguments)]
    fn alternative_compiled(
        &mut self,
        goal: &Literal,
        step: ProofStep,
        goals: Arc<[crate::compile::CompiledGoal]>,
        base: u32,
        depth: usize,
        rest: &Agenda,
        bs: &mut Bindings,
        anc: &mut Vec<Literal>,
        acc: &mut Vec<Proof>,
        out: &mut Vec<Solution>,
        query_vars: &[Var],
    ) -> Flow {
        let mut agenda = cons(
            GoalItem::Fold {
                goal: goal.clone(),
                step,
                arity: goals.len(),
            },
            rest.clone(),
        );
        for idx in (0..goals.len()).rev() {
            agenda = cons(
                GoalItem::Compiled {
                    goals: Arc::clone(&goals),
                    idx,
                    base,
                    depth: depth + 1,
                },
                agenda,
            );
        }
        anc.push(goal.clone());
        let flow = self.prove(&agenda, bs, anc, acc, out, query_vars);
        anc.pop();
        flow
    }

    /// Answer `goal` from the table. Returns the flow to propagate, or
    /// `None` when the occurrence must be resolved inline (variant in
    /// progress — a cycle through the table — or recorded incomplete).
    #[allow(clippy::too_many_arguments)]
    fn tabled(
        &mut self,
        goal: &Literal,
        rest: &Agenda,
        bs: &mut Bindings,
        anc: &mut Vec<Literal>,
        acc: &mut Vec<Proof>,
        out: &mut Vec<Solution>,
        query_vars: &[Var],
    ) -> Option<Flow> {
        let table = self.table.clone().expect("tabling requires a table");
        let key = canonical(goal);

        match table.probe(&key) {
            Probe::Inline => return None,
            Probe::Reuse(answers) => {
                return Some(self.reuse(goal, &answers, rest, bs, anc, acc, out, query_vars));
            }
            Probe::Fresh => {}
        }

        // Fresh variant: evaluate the canonical goal in an isolated
        // sub-derivation (same solver — shared hook, step budget and
        // rename counter; fresh agenda, ancestors and solution set).
        // Under a concurrent table another thread may be doing the same —
        // both evaluate the same KB, so both record the same entry.
        table.begin(key.clone());
        let mut sub_vars: Vec<Var> = Vec::new();
        key.collect_vars(&mut sub_vars);
        sub_vars.dedup();
        let cutoffs_before = self.stats.depth_cutoffs;
        let saved_max = self.config.max_solutions;
        self.config.max_solutions = self.config.table_max_answers;
        let agenda = cons(GoalItem::Lit(key.clone(), 0), None);
        let mut sub_out: Vec<Solution> = Vec::new();
        let mut sub_anc: Vec<Literal> = Vec::new();
        let mut sub_acc: Vec<Proof> = Vec::new();
        // The canonical key's `_C` variables carry low versions (1..k);
        // keep them below the sub-store's slot watermark so they land in
        // the named map while every standardized-apart rule variable
        // takes the dense slot path.
        let key_max = sub_vars.iter().map(|v| v.version).max().unwrap_or(0);
        self.rename_counter = self.rename_counter.max(key_max);
        let mut sub_bs = Bindings::new(self.rename_counter);
        let _ = self.prove(
            &agenda,
            &mut sub_bs,
            &mut sub_anc,
            &mut sub_acc,
            &mut sub_out,
            &sub_vars,
        );
        self.stats.absorb_trail(sub_bs.take_stats());
        self.stats.absorb_heap(sub_bs.take_heap_stats());
        self.config.max_solutions = saved_max;

        let capped = sub_out.len() >= self.config.table_max_answers;
        let cut = self.stats.depth_cutoffs > cutoffs_before;
        let exhausted = self.stats.step_budget_exhausted;
        let mut answers: Vec<TabledAnswer> = Vec::new();
        for sol in &sub_out {
            let proof = sol.proofs.first().expect("one proof per goal").clone();
            if answers.iter().any(|a| a.answer == proof.goal) {
                continue;
            }
            answers.push(TabledAnswer::new(proof.goal.clone(), proof));
        }
        let disposition = if capped || cut || exhausted {
            Disposition::Incomplete
        } else {
            Disposition::Complete
        };
        table.complete(key, disposition, answers.clone());

        if exhausted {
            return Some(Flow::Stop);
        }
        if disposition == Disposition::Incomplete {
            // Resource-bounded result: never reuse, resolve inline so the
            // answers at this occurrence match the untabled evaluation.
            table.note_inline_fallback();
            return None;
        }
        Some(self.reuse(goal, &answers, rest, bs, anc, acc, out, query_vars))
    }

    /// Resolve `goal` against memoized answers: each stored answer (and
    /// its proof) is renamed apart, unified with the goal, and its proof
    /// node pushed in place of a derivation.
    #[allow(clippy::too_many_arguments)]
    fn reuse(
        &mut self,
        goal: &Literal,
        answers: &[TabledAnswer],
        rest: &Agenda,
        bs: &mut Bindings,
        anc: &mut Vec<Literal>,
        acc: &mut Vec<Proof>,
        out: &mut Vec<Solution>,
        query_vars: &[Var],
    ) -> Flow {
        for ta in answers {
            let (ans, proof) = self.rename_answer_apart(ta);
            self.stats.unify_attempts += 1;
            let cp = bs.checkpoint();
            if !unify_literals_in(goal, &ans, bs) {
                continue;
            }
            acc.push(proof);
            let flow = self.prove(rest, bs, anc, acc, out, query_vars);
            acc.pop();
            bs.rollback(cp);
            if let Flow::Stop = flow {
                return Flow::Stop;
            }
        }
        Flow::Continue
    }

    /// Standardize a stored answer (and its proof tree) apart from every
    /// variable in play. Each distinct variable gets its own fresh version
    /// — a single shared version would merge distinct variables that
    /// happen to share a name.
    fn rename_answer_apart(&mut self, ta: &TabledAnswer) -> (Literal, Proof) {
        if !ta.needs_rename() {
            // Ground answer and proof (the flag was computed at
            // completion time): renaming is the identity, and the proof
            // clone is shallow — its children are shared `Arc`s.
            return (ta.answer.clone(), ta.proof.clone());
        }
        let mut vars: Vec<Var> = Vec::new();
        ta.answer.collect_vars(&mut vars);
        proof_vars(&ta.proof, &mut vars);
        if vars.is_empty() {
            return (ta.answer.clone(), ta.proof.clone());
        }
        let mut map: FxHashMap<Var, Term> = FxHashMap::default();
        for v in vars {
            if let std::collections::hash_map::Entry::Vacant(e) = map.entry(v) {
                self.rename_counter += 1;
                e.insert(Term::Var(Var::versioned(v.name, self.rename_counter)));
            }
        }
        let mut f = |v: Var| map.get(&v).cloned().unwrap_or(Term::Var(v));
        (
            ta.answer.map_vars(&mut f),
            map_proof_vars(&ta.proof, &mut f),
        )
    }
}

fn proof_vars(p: &Proof, out: &mut Vec<Var>) {
    p.goal.collect_vars(out);
    for c in &p.children {
        proof_vars(c, out);
    }
}

fn map_proof_vars(p: &Proof, f: &mut impl FnMut(Var) -> Term) -> Proof {
    Proof {
        goal: p.goal.map_vars(f),
        step: p.step.clone(),
        children: p
            .children
            .iter()
            .map(|c| Arc::new(map_proof_vars(c, f)))
            .collect(),
    }
}

/// Are two literals equal up to a consistent renaming of variables?
pub fn is_variant(a: &Literal, b: &Literal) -> bool {
    canonical(a) == canonical(b)
}

/// Allocation-free equivalent of `is_variant(&bs.apply_literal(anc), goal)`
/// for the ancestor loop check, the solver's most frequent inner loop
/// (every open ancestor is tested on every goal selection). Instead of
/// materializing the resolved ancestor and two canonical copies, this
/// walks `anc` through the binding store in lockstep with `goal` and
/// tracks the variable bijection in a caller-owned scratch buffer that
/// is reused across ancestors.
fn variant_under(anc: &Literal, goal: &Literal, bs: &Bindings, map: &mut Vec<(Var, Var)>) -> bool {
    map.clear();
    anc.pred == goal.pred
        && anc.args.len() == goal.args.len()
        && anc.authority.len() == goal.authority.len()
        && anc
            .args
            .iter()
            .zip(&goal.args)
            .chain(anc.authority.iter().zip(&goal.authority))
            .all(|(a, g)| variant_term_under(a, g, bs, map))
}

/// One aligned subterm pair of [`variant_under`]: resolve both sides one
/// level at a time via [`Bindings::walk`] and require either equal
/// constants, compatible compounds, or a consistent (bijective) pairing
/// of unbound variables.
fn variant_term_under(a: &Term, g: &Term, bs: &Bindings, map: &mut Vec<(Var, Var)>) -> bool {
    let a = bs.walk(a);
    let g = bs.walk(g);
    match (a, g) {
        (Term::Var(x), Term::Var(y)) => {
            let fwd = map.iter().find(|(p, _)| p == x).map(|(_, q)| q == y);
            let bwd = map.iter().find(|(_, q)| q == y).map(|(p, _)| p == x);
            match (fwd, bwd) {
                (None, None) => {
                    map.push((*x, *y));
                    true
                }
                (Some(f), Some(b)) => f && b,
                _ => false,
            }
        }
        (Term::Atom(x), Term::Atom(y)) => x == y,
        (Term::Str(x), Term::Str(y)) => x == y,
        (Term::Int(x), Term::Int(y)) => x == y,
        (Term::Compound(f, xs), Term::Compound(h, ys)) => {
            f == h
                && xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys.iter())
                    .all(|(x, y)| variant_term_under(x, y, bs, map))
        }
        _ => false,
    }
}

/// A canonical form: variables renamed in first-occurrence order. Two
/// literals are variants iff their canonical forms are equal — used by the
/// negotiation layer to key in-flight queries for cycle detection.
pub fn canonicalize(l: &Literal) -> Literal {
    canonical(l)
}

/// Normal form of an answer *set*: every literal canonicalized (variables
/// renamed in first-occurrence order), deduplicated, and sorted by display
/// form. Two answer sets are equal up to variable renaming iff their
/// normal forms are equal — this is the convergence test of the GEM
/// distributed-tabling layer (`peertrust_negotiation::gem`), where each
/// fixpoint round re-derives answers through the solver's standardize-apart
/// and would otherwise never compare equal across rounds.
pub fn canonical_answer_set(answers: &[Literal]) -> Vec<Literal> {
    let mut out: Vec<Literal> = Vec::with_capacity(answers.len());
    for a in answers {
        let c = canonical(a);
        if !out.contains(&c) {
            out.push(c);
        }
    }
    out.sort_by_key(|l| l.to_string());
    out
}

/// Rename variables to `_C0, _C1, ...` in first-occurrence order.
fn canonical(l: &Literal) -> Literal {
    let mut map: Vec<(Var, u32)> = Vec::new();
    l.map_vars(&mut |v| {
        let idx = match map.iter().find(|(w, _)| *w == v) {
            Some((_, i)) => *i,
            None => {
                let i = u32::try_from(map.len()).expect("too many vars");
                map.push((v, i));
                i
            }
        };
        Term::Var(Var::versioned("_C", idx + 1))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_core::Term;
    use peertrust_parser::{parse_goals, parse_program};

    fn kb(src: &str) -> KnowledgeBase {
        parse_program(src).unwrap().into_iter().collect()
    }

    fn solve_all(kb_src: &str, query: &str) -> Vec<Solution> {
        let kb = kb(kb_src);
        let mut solver = Solver::new(&kb, PeerId::new("self"));
        solver.solve(&parse_goals(query).unwrap())
    }

    #[test]
    fn facts_answer_queries() {
        let sols = solve_all("freeCourse(cs101). freeCourse(cs102).", "freeCourse(C)");
        assert_eq!(sols.len(), 2);
        let answers: Vec<String> = sols
            .iter()
            .map(|s| s.subst.apply(&Term::var("C")).to_string())
            .collect();
        assert_eq!(answers, ["cs101", "cs102"]);
    }

    #[test]
    fn conjunction_with_builtin() {
        let sols = solve_all(
            "price(cs411, 1000). price(cs500, 3000).",
            "price(C, P), P < 2000",
        );
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].subst.apply(&Term::var("C")), Term::atom("cs411"));
    }

    #[test]
    fn rule_chaining() {
        let sols = solve_all(
            r#"
            eligible(X) <- preferred(X).
            preferred(X) <- student(X).
            student("Alice").
            "#,
            r#"eligible("Alice")"#,
        );
        assert_eq!(sols.len(), 1);
        // Proof: eligible <- preferred <- student (fact).
        let proof = &sols[0].proofs[0];
        assert_eq!(proof.goal.to_string(), "eligible(\"Alice\")");
        assert_eq!(proof.size(), 3);
        assert_eq!(proof.used_rules().len(), 3);
    }

    #[test]
    fn authority_chains_must_match() {
        let sols = solve_all(
            r#"student("Alice") @ "UIUC" signedBy ["UIUC"]."#,
            r#"student(X) @ "UIUC""#,
        );
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].subst.apply(&Term::var("X")), Term::str("Alice"));

        // A goal without the chain does not match the credential.
        let none = solve_all(
            r#"student("Alice") @ "UIUC" signedBy ["UIUC"]."#,
            "student(X)",
        );
        assert!(none.is_empty());
    }

    #[test]
    fn self_authority_is_stripped() {
        let kb = kb(r#"student("Alice") @ "UIUC" signedBy ["UIUC"]."#);
        let mut solver = Solver::new(&kb, PeerId::new("Alice"));
        // Goal as another peer would phrase it: ask Alice herself.
        let goals = parse_goals(r#"student(X) @ "UIUC" @ "Alice""#).unwrap();
        let sols = solver.solve(&goals);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].proofs[0].step, ProofStep::SelfAuthority);
    }

    #[test]
    fn variables_in_answers_are_projected() {
        let sols = solve_all("p(X) <- q(X, Y). q(1, 2). q(3, 4).", "p(A)");
        assert_eq!(sols.len(), 2);
        // Only A appears in the projected answer.
        for sol in &sols {
            assert_eq!(sol.subst.len(), 1);
        }
    }

    #[test]
    fn recursive_rules_terminate_via_loop_check() {
        // p <- p would loop forever without the ancestor check.
        let sols = solve_all("p <- p.", "p");
        assert!(sols.is_empty());
    }

    #[test]
    fn transitive_closure_works_despite_loop_check() {
        let sols = solve_all(
            r#"
            reach(X, Y) <- edge(X, Y).
            reach(X, Z) <- edge(X, Y), reach(Y, Z).
            edge(1, 2). edge(2, 3). edge(3, 4).
            "#,
            "reach(1, W)",
        );
        let answers: Vec<String> = sols
            .iter()
            .map(|s| s.subst.apply(&Term::var("W")).to_string())
            .collect();
        assert_eq!(answers, ["2", "3", "4"]);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let sols = solve_all(
            r#"
            reach(X, Y) <- edge(X, Y).
            reach(X, Z) <- edge(X, Y), reach(Y, Z).
            edge(1, 2). edge(2, 1).
            "#,
            "reach(1, W)",
        );
        // Terminates; finds 2 and 1 (possibly with duplicates pruned by
        // variant check). At least one answer must be found.
        assert!(!sols.is_empty());
    }

    #[test]
    fn max_solutions_limits_output() {
        let kb = kb("n(1). n(2). n(3). n(4). n(5).");
        let mut solver = Solver::new(&kb, PeerId::new("self")).with_config(EngineConfig {
            max_solutions: 2,
            ..EngineConfig::default()
        });
        let sols = solver.solve(&parse_goals("n(X)").unwrap());
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn depth_bound_prunes() {
        let kb = kb("deep(X) <- deep(f(X)).");
        let mut solver = Solver::new(&kb, PeerId::new("self")).with_config(EngineConfig {
            max_depth: 10,
            ancestor_loop_check: false, // each call has a fresh term, no variant
            ..EngineConfig::default()
        });
        let sols = solver.solve(&parse_goals("deep(0)").unwrap());
        assert!(sols.is_empty());
        assert!(solver.stats().depth_cutoffs > 0);
    }

    #[test]
    fn step_budget_is_a_hard_stop() {
        // Breadth explosion: 9^3 = 729 combinations all failing the final
        // goal — the 500-step budget must cut the search off.
        let mut src = String::from("q <- n(X), n(Y), n(Z), never(X, Y, Z).\n");
        for i in 1..=9 {
            src.push_str(&format!("n({i}).\n"));
        }
        let kb = kb(&src);
        let mut solver = Solver::new(&kb, PeerId::new("self")).with_config(EngineConfig {
            max_steps: 500,
            ..EngineConfig::default()
        });
        let sols = solver.solve(&parse_goals("q").unwrap());
        assert!(sols.is_empty());
        assert!(solver.stats().step_budget_exhausted);
        assert!(solver.stats().steps <= 501);
    }

    #[test]
    fn remote_hook_resolves_delegated_goals() {
        struct FakeAlice;
        impl RemoteHook for FakeAlice {
            fn resolve_remote(&mut self, peer: PeerId, goal: &Literal) -> Vec<Literal> {
                assert_eq!(peer, PeerId::new("Alice"));
                assert_eq!(goal.to_string(), "student(\"Alice\") @ \"UIUC\"");
                vec![Literal::new("student", vec![Term::str("Alice")]).at(Term::str("UIUC"))]
            }
        }
        let kb = kb(r#"
            eligible(X) <- student(X) @ "UIUC" @ X.
            "#);
        let mut hook = FakeAlice;
        let mut solver = Solver::new(&kb, PeerId::new("E-Learn")).with_hook(&mut hook);
        let sols = solver.solve(&parse_goals(r#"eligible("Alice")"#).unwrap());
        assert_eq!(sols.len(), 1);
        assert_eq!(solver.stats().remote_calls, 1);
        let deps = sols[0].proofs[0].remote_dependencies();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].0, PeerId::new("Alice"));
    }

    #[test]
    fn remote_skipped_when_local_clause_exists() {
        struct Panics;
        impl RemoteHook for Panics {
            fn resolve_remote(&mut self, _p: PeerId, _g: &Literal) -> Vec<Literal> {
                panic!("must not be called: a local cached rule covers the goal");
            }
        }
        // E-Learn cached ELENA's signed rule, so no query to ELENA needed.
        let kb = kb(r#"
            preferred(X) @ "ELENA" <- signedBy ["ELENA"] student(X) @ "UIUC".
            student("Alice") @ "UIUC" signedBy ["UIUC"].
            "#);
        let mut hook = Panics;
        let mut solver = Solver::new(&kb, PeerId::new("E-Learn")).with_hook(&mut hook);
        let sols = solver.solve(&parse_goals(r#"preferred("Alice") @ "ELENA""#).unwrap());
        assert_eq!(sols.len(), 1);
        assert_eq!(solver.stats().remote_calls, 0);
    }

    #[test]
    fn remote_always_policy_consults_hook_even_with_local_clause() {
        struct Counting(u64);
        impl RemoteHook for Counting {
            fn resolve_remote(&mut self, _p: PeerId, _g: &Literal) -> Vec<Literal> {
                self.0 += 1;
                Vec::new()
            }
        }
        let kb = kb(r#"member("IBM") @ "ELENA" signedBy ["ELENA"]."#);
        let mut hook = Counting(0);
        let mut solver = Solver::new(&kb, PeerId::new("E-Learn"))
            .with_config(EngineConfig {
                remote_fallback: RemoteFallback::Always,
                ..EngineConfig::default()
            })
            .with_hook(&mut hook);
        let sols = solver.solve(&parse_goals(r#"member("IBM") @ "ELENA""#).unwrap());
        assert_eq!(sols.len(), 1); // local cache answered
        assert_eq!(solver.stats().remote_calls, 1); // but remote was consulted too
    }

    #[test]
    fn unbound_authority_stays_local() {
        // purchaseApproved(...) @ Authority with Authority unbound: engine
        // must not call the hook (no peer to route to).
        struct Panics;
        impl RemoteHook for Panics {
            fn resolve_remote(&mut self, _p: PeerId, _g: &Literal) -> Vec<Literal> {
                panic!("no ground peer, hook must not fire");
            }
        }
        let kb = kb("q(X) <- p(1) @ X.");
        let mut hook = Panics;
        let mut solver = Solver::new(&kb, PeerId::new("self")).with_hook(&mut hook);
        let sols = solver.solve(&parse_goals("q(Y)").unwrap());
        assert!(sols.is_empty());
    }

    #[test]
    fn authority_bound_by_earlier_goal_routes_remotely() {
        // The §4.2 authority-database pattern.
        struct VisaHook;
        impl RemoteHook for VisaHook {
            fn resolve_remote(&mut self, peer: PeerId, goal: &Literal) -> Vec<Literal> {
                assert_eq!(peer, PeerId::new("VISA"));
                let mut ans = goal.clone();
                ans.args = vec![Term::str("IBM"), Term::int(1000)];
                vec![ans]
            }
        }
        let kb = kb(r#"
            authority(purchaseApproved, "VISA").
            ok(C, P) <- authority(purchaseApproved, A), purchaseApproved(C, P) @ A.
            "#);
        let mut hook = VisaHook;
        let mut solver = Solver::new(&kb, PeerId::new("E-Learn")).with_hook(&mut hook);
        let sols = solver.solve(&parse_goals(r#"ok("IBM", 1000)"#).unwrap());
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn proof_records_rule_ids() {
        let program = parse_program("a <- b. b.").unwrap();
        let kb: KnowledgeBase = program.into_iter().collect();
        let mut solver = Solver::new(&kb, PeerId::new("self"));
        let sols = solver.solve(&parse_goals("a").unwrap());
        let used = sols[0].proofs[0].used_rules();
        assert_eq!(used, vec![RuleId(0), RuleId(1)]);
    }

    #[test]
    fn variant_check_detects_renamings() {
        let a = Literal::new("p", vec![Term::var("X"), Term::var("Y"), Term::var("X")]);
        let b = Literal::new("p", vec![Term::var("A"), Term::var("B"), Term::var("A")]);
        let c = Literal::new("p", vec![Term::var("A"), Term::var("B"), Term::var("B")]);
        assert!(is_variant(&a, &b));
        assert!(!is_variant(&a, &c));
        let g = Literal::new("p", vec![Term::int(1), Term::var("Y"), Term::int(1)]);
        assert!(!is_variant(&a, &g));
    }

    /// The allocation-free ancestor check must agree with the reference
    /// formulation `is_variant(&bs.apply_literal(anc), goal)`, including
    /// when the ancestor's variables are bound through chains in the
    /// trail store.
    #[test]
    fn variant_under_matches_materialized_is_variant() {
        let mut bs = Bindings::new(0);
        // X -> Y -> f(Z), W unbound.
        bs.bind(Var::new("X"), Term::var("Y"));
        bs.bind(Var::new("Y"), Term::compound("f", vec![Term::var("Z")]));
        let goal = Literal::new(
            "p",
            vec![Term::compound("f", vec![Term::var("V")]), Term::var("U")],
        );
        let cases = [
            Literal::new("p", vec![Term::var("X"), Term::var("W")]),
            Literal::new("p", vec![Term::var("X"), Term::var("Z")]),
            Literal::new("p", vec![Term::var("X"), Term::var("X")]),
            Literal::new("p", vec![Term::var("W"), Term::var("W")]),
            Literal::new("q", vec![Term::var("X"), Term::var("W")]),
            Literal::new("p", vec![Term::int(3), Term::var("W")]),
            Literal::new("p", vec![Term::var("X")]),
        ];
        let mut map = Vec::new();
        for anc in &cases {
            assert_eq!(
                variant_under(anc, &goal, &bs, &mut map),
                is_variant(&bs.apply_literal(anc), &goal),
                "divergence on ancestor {anc}"
            );
        }
        // And the positive case really is positive.
        assert!(variant_under(&cases[0], &goal, &bs, &mut map));
    }

    #[test]
    fn zero_arity_goals() {
        let sols = solve_all("ready <- initialized. initialized.", "ready");
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn rule_with_head_context_still_derives_locally() {
        // Contexts guard disclosure, not local derivation.
        let sols = solve_all(
            r#"secret(X) $ Requester = "nobody" <- base(X). base(1)."#,
            "secret(X)",
        );
        assert_eq!(sols.len(), 1);
    }
}

#[cfg(test)]
mod tabling_tests {
    use super::*;
    use peertrust_core::Term;
    use peertrust_parser::{parse_goals, parse_program};

    fn kb(src: &str) -> KnowledgeBase {
        parse_program(src).unwrap().into_iter().collect()
    }

    fn tabled_config() -> EngineConfig {
        EngineConfig {
            tabling: true,
            ..EngineConfig::default()
        }
    }

    fn answers(sols: &[Solution], var: &str) -> Vec<String> {
        let mut a: Vec<String> = sols
            .iter()
            .map(|s| s.subst.apply(&Term::var(var)).to_string())
            .collect();
        a.sort();
        a
    }

    #[test]
    fn tabling_preserves_answers_and_proofs() {
        let src = r#"
            eligible(X) <- preferred(X).
            preferred(X) <- student(X).
            student("Alice"). student("Bob").
        "#;
        let kb = kb(src);
        let mut plain = Solver::new(&kb, PeerId::new("self"));
        let mut tabled = Solver::new(&kb, PeerId::new("self")).with_config(tabled_config());
        let goals = parse_goals("eligible(W)").unwrap();
        let a = plain.solve(&goals);
        let b = tabled.solve(&goals);
        assert_eq!(answers(&a, "W"), answers(&b, "W"));
        // Proof shape survives memoization (negotiation depends on it).
        assert_eq!(a[0].proofs[0].size(), b[0].proofs[0].size());
        assert_eq!(a[0].proofs[0].used_rules(), b[0].proofs[0].used_rules());
    }

    #[test]
    fn repeated_subgoals_hit_the_table() {
        // Both branches re-derive the same ground `base(1)` variant.
        let src = "top(X) <- left(X), right(X). left(X) <- base(X). right(X) <- base(X). base(1). base(2).";
        let kb = kb(src);
        let mut solver = Solver::new(&kb, PeerId::new("self")).with_config(tabled_config());
        let sols = solver.solve(&parse_goals("top(1)").unwrap());
        assert_eq!(sols.len(), 1);
        let ts = solver.table_stats();
        assert!(ts.hits >= 1, "expected table hits, got {ts:?}");
        assert!(ts.inserts >= 2);
    }

    #[test]
    fn warm_table_answers_without_rule_tries() {
        let kb = kb("p(X) <- q(X). q(1). q(2). q(3).");
        let table: SharedTable = Rc::new(RefCell::new(AnswerTable::new()));
        let goals = parse_goals("p(X)").unwrap();

        let mut cold = Solver::new(&kb, PeerId::new("self"))
            .with_config(tabled_config())
            .with_table(table.clone());
        let first = cold.solve(&goals);
        assert_eq!(first.len(), 3);
        let cold_steps = cold.stats().steps;

        let mut warm = Solver::new(&kb, PeerId::new("self"))
            .with_config(tabled_config())
            .with_table(table.clone());
        let second = warm.solve(&goals);
        assert_eq!(answers(&first, "X"), answers(&second, "X"));
        assert!(
            warm.stats().steps < cold_steps,
            "warm solve must do fewer resolution steps ({} vs {cold_steps})",
            warm.stats().steps
        );
        assert_eq!(warm.stats().rule_tries, 0);
        assert!(table.borrow().stats().hits >= 1);
    }

    #[test]
    fn cyclic_programs_terminate_with_tabling() {
        let src = r#"
            reach(X, Y) <- edge(X, Y).
            reach(X, Z) <- edge(X, Y), reach(Y, Z).
            edge(1, 2). edge(2, 1). edge(2, 3).
        "#;
        let kb = kb(src);
        let mut plain = Solver::new(&kb, PeerId::new("self"));
        let mut tabled = Solver::new(&kb, PeerId::new("self")).with_config(tabled_config());
        let goals = parse_goals("reach(1, W)").unwrap();
        let a = plain.solve(&goals);
        let b = tabled.solve(&goals);
        assert_eq!(answers(&a, "W"), answers(&b, "W"));
    }

    #[test]
    fn nonground_answers_rename_apart_on_reuse() {
        // `open(X)` has the non-ground answer open(_). Reusing it for
        // open(A) and open(B) must not alias A and B through the stored
        // answer's variable: the follow-up bindings A=1, B=2 only succeed
        // when each reuse got a fresh renaming.
        let kb = kb("open(X). pair(A, B) <- open(A), open(B), A = 1, B = 2.");
        let mut solver = Solver::new(&kb, PeerId::new("self")).with_config(tabled_config());
        let sols = solver.solve(&parse_goals("pair(A, B)").unwrap());
        assert_eq!(sols.len(), 1, "distinct instantiations must both succeed");
        assert!(solver.table_stats().hits >= 1);
    }

    #[test]
    fn authority_goals_are_not_tabled() {
        let kb = kb(r#"student("Alice") @ "UIUC" signedBy ["UIUC"]."#);
        let mut solver = Solver::new(&kb, PeerId::new("self")).with_config(tabled_config());
        let sols = solver.solve(&parse_goals(r#"student(X) @ "UIUC""#).unwrap());
        assert_eq!(sols.len(), 1);
        let ts = solver.table_stats();
        assert_eq!(
            ts.misses, 0,
            "authority-chained goals must bypass the table: {ts:?}"
        );
    }

    #[test]
    fn incomplete_variants_resolve_inline() {
        let kb = kb("n(1). n(2). n(3). n(4). n(5).");
        let mut solver = Solver::new(&kb, PeerId::new("self")).with_config(EngineConfig {
            tabling: true,
            table_max_answers: 2, // forces Incomplete on n(X)
            ..EngineConfig::default()
        });
        let sols = solver.solve(&parse_goals("n(X)").unwrap());
        // Inline fallback recovers the full answer set.
        assert_eq!(sols.len(), 5);
        let ts = solver.table_stats();
        assert_eq!(ts.incomplete, 1);
        assert!(ts.inline_fallbacks >= 1);
        // A second occurrence still resolves inline, never from the table.
        let sols2 = solver.solve(&parse_goals("n(Y)").unwrap());
        assert_eq!(sols2.len(), 5);
        assert_eq!(solver.table_stats().hits, 0);
    }
}

#[cfg(test)]
mod naf_tests {
    use super::*;
    use peertrust_core::Term;
    use peertrust_parser::{parse_goals, parse_program};

    fn solve_all(kb_src: &str, query: &str) -> Vec<Solution> {
        let kb: KnowledgeBase = parse_program(kb_src).unwrap().into_iter().collect();
        let mut solver = Solver::new(&kb, PeerId::new("self"));
        solver.solve(&parse_goals(query).unwrap())
    }

    #[test]
    fn naf_succeeds_on_absent_facts() {
        let sols = solve_all(
            "eligible(X) <- person(X), not(banned(X)). person(alice). person(bob). banned(bob).",
            "eligible(W)",
        );
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].subst.apply(&Term::var("W")), Term::atom("alice"));
        // The proof records the negation step.
        let has_negation = sols[0].proofs[0]
            .children
            .iter()
            .any(|c| c.step == ProofStep::Negation);
        assert!(has_negation);
    }

    #[test]
    fn naf_fails_on_derivable_goals() {
        // banned is derivable through a rule, not just a fact.
        let sols = solve_all(
            "ok <- not(banned(bob)). banned(X) <- flagged(X). flagged(bob).",
            "ok",
        );
        assert!(sols.is_empty());
    }

    #[test]
    fn nonground_negation_flounders() {
        let sols = solve_all("p <- not(q(X)). q(1).", "p");
        assert!(
            sols.is_empty(),
            "non-ground negation must flounder, not succeed"
        );
    }

    #[test]
    fn zero_arity_negated_goal() {
        let sols = solve_all("p <- not(closed). open_flag.", "p");
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn double_negation() {
        let sols = solve_all("p <- not(q). q <- not(r).", "p");
        // q succeeds (r unprovable), so not(q) fails, so p fails.
        assert!(sols.is_empty());
        let sols2 = solve_all("p <- not(q). q <- not(r). r.", "p");
        // r holds => q fails => not(q) holds => p holds.
        assert_eq!(sols2.len(), 1);
    }

    #[test]
    fn forward_chaining_skips_naf_rules() {
        let kb: KnowledgeBase = parse_program("p <- not(q). base(1).")
            .unwrap()
            .into_iter()
            .collect();
        let sat = crate::forward::saturate(
            &kb,
            PeerId::new("self"),
            crate::forward::ForwardConfig::default(),
        );
        // The NAF rule is skipped: p is not forward-derived even though
        // SLD proves it. Documented stratification limitation.
        assert!(!sat.contains(&Literal::new("p", vec![])));
    }
}
