//! Builtin predicate evaluation.
//!
//! The engine natively evaluates the comparison predicates the paper's
//! policies use (`Price < 2000`, `Requester = Self` after pseudo-variable
//! binding): `=`, `!=`, `<`, `<=`, `>`, `>=`, and the trivial `true`.
//!
//! `=` unifies its arguments (so it can bind variables); the ordering
//! comparisons require both sides to be ground integers — a non-ground or
//! non-numeric comparison simply fails, mirroring Datalog safety rather
//! than raising a run-time error, but the failure is distinguishable via
//! [`BuiltinOutcome::IllTyped`] so callers can surface policy bugs.

use peertrust_core::{unify, unify_in, Bindings, Literal, Subst, Term};

/// Result of evaluating a builtin literal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuiltinOutcome {
    /// The builtin succeeded; the substitution may have been extended.
    True(Subst),
    /// The builtin is false under the current bindings.
    False,
    /// The builtin could not be evaluated (unbound variable in an ordering
    /// comparison, or non-integer operands). Treated as failure, but
    /// reported distinctly for diagnostics.
    IllTyped(String),
}

/// Result of evaluating a builtin destructively against a
/// [`Bindings`] store: the success case extends the store in place
/// instead of returning a cloned substitution. The caller owns the
/// checkpoint/rollback around the call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuiltinOutcomeIn {
    /// The builtin succeeded; the store may have been extended.
    True,
    /// The builtin is false under the current bindings.
    False,
    /// See [`BuiltinOutcome::IllTyped`].
    IllTyped(String),
}

/// Is `lit` one of the engine's builtins?
pub fn is_builtin(lit: &Literal) -> bool {
    lit.is_builtin()
}

/// Evaluate builtin `lit` destructively against `bs` — the trail-based
/// twin of [`eval_builtin`], with identical semantics. No clone on
/// success: `=` binds through the trail, comparisons read through
/// [`Bindings::apply`]. On `False`/`IllTyped` the store is unchanged
/// (the `=` unifier rolls itself back).
///
/// Precondition: `lit.is_builtin()`.
pub fn eval_builtin_in(lit: &Literal, bs: &mut Bindings) -> BuiltinOutcomeIn {
    match lit.pred.as_str() {
        "true" => BuiltinOutcomeIn::True,
        "=" => {
            if unify_in(&lit.args[0], &lit.args[1], bs) {
                BuiltinOutcomeIn::True
            } else {
                BuiltinOutcomeIn::False
            }
        }
        "!=" => {
            let a = bs.apply(&lit.args[0]);
            let b = bs.apply(&lit.args[1]);
            if !a.is_ground() || !b.is_ground() {
                return BuiltinOutcomeIn::IllTyped(format!("!= on non-ground terms {a} / {b}"));
            }
            if a != b {
                BuiltinOutcomeIn::True
            } else {
                BuiltinOutcomeIn::False
            }
        }
        op @ ("<" | "<=" | ">" | ">=") => {
            let a = bs.apply(&lit.args[0]);
            let b = bs.apply(&lit.args[1]);
            match (&a, &b) {
                (Term::Int(x), Term::Int(y)) => {
                    let holds = match op {
                        "<" => x < y,
                        "<=" => x <= y,
                        ">" => x > y,
                        ">=" => x >= y,
                        _ => unreachable!(),
                    };
                    if holds {
                        BuiltinOutcomeIn::True
                    } else {
                        BuiltinOutcomeIn::False
                    }
                }
                _ => BuiltinOutcomeIn::IllTyped(format!(
                    "{op} needs ground integers, got {a} {op} {b}"
                )),
            }
        }
        other => BuiltinOutcomeIn::IllTyped(format!("unknown builtin {other}")),
    }
}

/// Evaluate builtin `lit` under `s`.
///
/// Precondition: `lit.is_builtin()`. The authority chain on a builtin is
/// ignored (the paper never delegates builtin evaluation).
pub fn eval_builtin(lit: &Literal, s: &Subst) -> BuiltinOutcome {
    match lit.pred.as_str() {
        "true" => BuiltinOutcome::True(s.clone()),
        "=" => {
            let mut s2 = s.clone();
            if unify(&lit.args[0], &lit.args[1], &mut s2) {
                BuiltinOutcome::True(s2)
            } else {
                BuiltinOutcome::False
            }
        }
        "!=" => {
            let a = s.apply(&lit.args[0]);
            let b = s.apply(&lit.args[1]);
            if !a.is_ground() || !b.is_ground() {
                return BuiltinOutcome::IllTyped(format!("!= on non-ground terms {a} / {b}"));
            }
            if a != b {
                BuiltinOutcome::True(s.clone())
            } else {
                BuiltinOutcome::False
            }
        }
        op @ ("<" | "<=" | ">" | ">=") => {
            let a = s.apply(&lit.args[0]);
            let b = s.apply(&lit.args[1]);
            match (&a, &b) {
                (Term::Int(x), Term::Int(y)) => {
                    let holds = match op {
                        "<" => x < y,
                        "<=" => x <= y,
                        ">" => x > y,
                        ">=" => x >= y,
                        _ => unreachable!(),
                    };
                    if holds {
                        BuiltinOutcome::True(s.clone())
                    } else {
                        BuiltinOutcome::False
                    }
                }
                _ => BuiltinOutcome::IllTyped(format!(
                    "{op} needs ground integers, got {a} {op} {b}"
                )),
            }
        }
        other => BuiltinOutcome::IllTyped(format!("unknown builtin {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_core::Var;

    #[test]
    fn true_always_succeeds() {
        let out = eval_builtin(&Literal::truth(), &Subst::new());
        assert!(matches!(out, BuiltinOutcome::True(_)));
    }

    #[test]
    fn equality_unifies_and_binds() {
        let lit = Literal::eq(Term::var("X"), Term::int(5));
        match eval_builtin(&lit, &Subst::new()) {
            BuiltinOutcome::True(s) => assert_eq!(s.apply(&Term::var("X")), Term::int(5)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_fails_on_mismatch() {
        let lit = Literal::eq(Term::str("eOrg"), Term::str("Alice"));
        assert_eq!(eval_builtin(&lit, &Subst::new()), BuiltinOutcome::False);
    }

    #[test]
    fn ordering_comparisons_on_ints() {
        let cases = [
            ("<", 1, 2, true),
            ("<", 2, 2, false),
            ("<=", 2, 2, true),
            (">", 3, 2, true),
            (">", 2, 3, false),
            (">=", 2, 2, true),
        ];
        for (op, a, b, want) in cases {
            let lit = Literal::cmp(op, Term::int(a), Term::int(b));
            let got = matches!(eval_builtin(&lit, &Subst::new()), BuiltinOutcome::True(_));
            assert_eq!(got, want, "{a} {op} {b}");
        }
    }

    #[test]
    fn price_check_from_paper() {
        // authorized("Bob", Price) ... Price < 2000 with Price bound to 1000.
        let mut s = Subst::new();
        s.bind(Var::new("Price"), Term::int(1000));
        let lit = Literal::cmp("<", Term::var("Price"), Term::int(2000));
        assert!(matches!(eval_builtin(&lit, &s), BuiltinOutcome::True(_)));

        let mut s2 = Subst::new();
        s2.bind(Var::new("Price"), Term::int(2500));
        assert_eq!(eval_builtin(&lit, &s2), BuiltinOutcome::False);
    }

    #[test]
    fn unbound_comparison_is_ill_typed() {
        let lit = Literal::cmp("<", Term::var("X"), Term::int(2));
        assert!(matches!(
            eval_builtin(&lit, &Subst::new()),
            BuiltinOutcome::IllTyped(_)
        ));
    }

    #[test]
    fn non_integer_comparison_is_ill_typed() {
        let lit = Literal::cmp("<", Term::str("a"), Term::str("b"));
        assert!(matches!(
            eval_builtin(&lit, &Subst::new()),
            BuiltinOutcome::IllTyped(_)
        ));
    }

    #[test]
    fn inequality_requires_ground_terms() {
        let lit = Literal::cmp("!=", Term::var("X"), Term::int(1));
        assert!(matches!(
            eval_builtin(&lit, &Subst::new()),
            BuiltinOutcome::IllTyped(_)
        ));
        let lit2 = Literal::cmp("!=", Term::int(2), Term::int(1));
        assert!(matches!(
            eval_builtin(&lit2, &Subst::new()),
            BuiltinOutcome::True(_)
        ));
        let lit3 = Literal::cmp("!=", Term::int(1), Term::int(1));
        assert_eq!(eval_builtin(&lit3, &Subst::new()), BuiltinOutcome::False);
    }

    #[test]
    fn destructive_builtins_match_subst_builtins() {
        let mut bs = Bindings::new(0);
        assert_eq!(
            eval_builtin_in(&Literal::truth(), &mut bs),
            BuiltinOutcomeIn::True
        );
        let eq = Literal::eq(Term::var("X"), Term::int(5));
        assert_eq!(eval_builtin_in(&eq, &mut bs), BuiltinOutcomeIn::True);
        assert_eq!(bs.apply(&Term::var("X")), Term::int(5));
        let lt = Literal::cmp("<", Term::var("X"), Term::int(9));
        assert_eq!(eval_builtin_in(&lt, &mut bs), BuiltinOutcomeIn::True);
        let ge = Literal::cmp(">=", Term::var("X"), Term::int(9));
        assert_eq!(eval_builtin_in(&ge, &mut bs), BuiltinOutcomeIn::False);
    }

    #[test]
    fn destructive_equality_failure_leaves_store_unchanged() {
        let mut bs = Bindings::new(0);
        let eq = Literal::eq(
            Term::compound("f", vec![Term::var("Y"), Term::int(1)]),
            Term::compound("f", vec![Term::int(2), Term::int(3)]),
        );
        assert_eq!(eval_builtin_in(&eq, &mut bs), BuiltinOutcomeIn::False);
        assert!(bs.is_empty(), "failed = must roll back partial bindings");
        let cmp = Literal::cmp("<", Term::var("Z"), Term::int(2));
        assert!(matches!(
            eval_builtin_in(&cmp, &mut bs),
            BuiltinOutcomeIn::IllTyped(_)
        ));
        assert!(bs.is_empty());
    }

    #[test]
    fn atom_string_inequality_holds() {
        let lit = Literal::cmp("!=", Term::atom("cs101"), Term::str("cs101"));
        assert!(matches!(
            eval_builtin(&lit, &Subst::new()),
            BuiltinOutcome::True(_)
        ));
    }
}
