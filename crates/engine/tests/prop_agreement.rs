//! Differential property test: forward chaining (the §3.2 fixpoint
//! semantics) and backward chaining (SLD resolution) agree on ground
//! facts, for randomly generated Datalog-style programs.

use peertrust_core::prelude::*;
use peertrust_engine::{saturate, EngineConfig, ForwardConfig, Solver};
use proptest::prelude::*;

/// A random safe Datalog program over a small universe:
/// * a few EDB facts `e{i}(c, c)`;
/// * rules `p{k}(X, Y) <- body...` where every head variable occurs in a
///   non-builtin body literal (safety).
#[derive(Clone, Debug)]
struct Program {
    rules: Vec<Rule>,
}

fn arb_const() -> impl Strategy<Value = Term> {
    (0i64..4).prop_map(Term::int)
}

fn arb_program() -> impl Strategy<Value = Program> {
    let facts = prop::collection::vec(
        (0u32..3, arb_const(), arb_const())
            .prop_map(|(p, a, b)| Rule::fact(Literal::new(format!("e{p}").as_str(), vec![a, b]))),
        1..8,
    );
    // Rules: head p{k}(X, Y); body: 1-2 edb/idb literals over vars {X, Y, Z}
    // ensuring X and Y appear.
    let rules = prop::collection::vec(
        (0u32..2, 0u32..3, 0u32..3, any::<bool>(), any::<bool>()).prop_map(
            |(hk, b1, b2, use_idb, chain)| {
                let (x, y, z) = (Term::var("X"), Term::var("Y"), Term::var("Z"));
                let head = Literal::new(format!("p{hk}").as_str(), vec![x.clone(), y.clone()]);
                let first = Literal::new(
                    format!("e{b1}").as_str(),
                    vec![x.clone(), if chain { z.clone() } else { y.clone() }],
                );
                let second_name = if use_idb {
                    format!("p{}", b2 % 2)
                } else {
                    format!("e{b2}")
                };
                let second = Literal::new(second_name.as_str(), vec![if chain { z } else { x }, y]);
                Rule::horn(head, vec![first, second])
            },
        ),
        0..5,
    );
    (facts, rules).prop_map(|(f, r)| Program {
        rules: f.into_iter().chain(r).collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every fact the forward chainer derives is SLD-provable, and every
    /// ground instance SLD proves over the visible universe is in the
    /// forward fixpoint.
    #[test]
    fn forward_and_backward_agree(prog in arb_program()) {
        let kb: KnowledgeBase = prog.rules.iter().cloned().collect();
        let me = PeerId::new("self");
        let sat = saturate(&kb, me, ForwardConfig::default());
        prop_assume!(!sat.truncated);

        // Forward => backward.
        for fact in &sat.facts {
            // Skip the self-authority closure forms: SLD strips them, so
            // test the plain form only.
            if fact.eval_peer() == Some(me) {
                continue;
            }
            let mut solver = Solver::new(&kb, me).with_config(EngineConfig {
                max_solutions: 1,
                ..EngineConfig::default()
            });
            prop_assert!(
                solver.provable(std::slice::from_ref(fact)),
                "forward-derived {fact} not SLD-provable"
            );
        }

        // Backward => forward: enumerate SLD answers for each IDB/EDB
        // predicate pattern and check membership in the fixpoint.
        for pred in ["p0", "p1", "e0", "e1", "e2"] {
            let goal = Literal::new(pred, vec![Term::var("A"), Term::var("B")]);
            let mut solver = Solver::new(&kb, me).with_config(EngineConfig {
                max_solutions: 256,
                ..EngineConfig::default()
            });
            for sol in solver.solve(std::slice::from_ref(&goal)) {
                let instance = sol.subst.apply_literal(&goal);
                if instance.is_ground() {
                    prop_assert!(
                        sat.contains(&instance),
                        "SLD answer {instance} missing from forward fixpoint"
                    );
                }
            }
        }
    }

    /// SLD with the ancestor loop check always terminates on these
    /// programs within the step budget (they are function-free).
    #[test]
    fn sld_terminates_on_datalog(prog in arb_program()) {
        let kb: KnowledgeBase = prog.rules.iter().cloned().collect();
        let mut solver = Solver::new(&kb, PeerId::new("self")).with_config(EngineConfig {
            max_steps: 200_000,
            max_solutions: 512,
            ..EngineConfig::default()
        });
        let goal = Literal::new("p0", vec![Term::var("A"), Term::var("B")]);
        let _ = solver.solve(std::slice::from_ref(&goal));
        prop_assert!(
            !solver.stats().step_budget_exhausted,
            "stats: {:?}",
            solver.stats()
        );
    }
}
