//! Multi-thread stress test for the shared [`ConcurrentTable`]: 8 threads
//! hammer one table on overlapping goal variants and every thread's
//! answer sets must equal a single-threaded reference run.
//!
//! This extends the `prop_tabling.rs` differential into the concurrent
//! regime: the single-threaded differential shows tabling preserves
//! answer sets; this one shows *sharing the table between racing
//! threads* preserves them too (racing `begin`s, interleaved
//! `complete`s, inline fallbacks through other threads' in-progress
//! marks).

use peertrust_core::prelude::*;
use peertrust_engine::{canonicalize, ConcurrentTable, EngineConfig, Solver};
use std::collections::BTreeSet;
use std::sync::Arc;

const THREADS: usize = 8;
const ROUNDS: usize = 4;

/// A transitive-closure program with several entry points, so every
/// thread's query DAG overlaps every other's: `path` recursion funnels
/// all threads through the same `edge`/`path` variants.
fn reachability_kb(n: i64) -> KnowledgeBase {
    let mut rules: Vec<Rule> = Vec::new();
    for i in 0..n {
        rules.push(Rule::fact(Literal::new(
            "edge",
            vec![Term::int(i), Term::int(i + 1)],
        )));
    }
    // Branching edges so variants carry more than one answer.
    for i in 0..n / 2 {
        rules.push(Rule::fact(Literal::new(
            "edge",
            vec![Term::int(i), Term::int(i + 2)],
        )));
    }
    let (x, y, z) = (Term::var("X"), Term::var("Y"), Term::var("Z"));
    rules.push(Rule::horn(
        Literal::new("path", vec![x.clone(), y.clone()]),
        vec![Literal::new("edge", vec![x.clone(), y.clone()])],
    ));
    rules.push(Rule::horn(
        Literal::new("path", vec![x.clone(), y.clone()]),
        vec![
            Literal::new("edge", vec![x, z.clone()]),
            Literal::new("path", vec![z, y]),
        ],
    ));
    rules.into_iter().collect()
}

fn goals(n: i64) -> Vec<Literal> {
    let mut gs = vec![Literal::new("path", vec![Term::var("A"), Term::var("B")])];
    for i in 0..n {
        gs.push(Literal::new("path", vec![Term::int(i), Term::var("B")]));
        gs.push(Literal::new("path", vec![Term::var("A"), Term::int(i)]));
    }
    gs
}

fn config() -> EngineConfig {
    EngineConfig {
        max_solutions: 4096,
        max_steps: 10_000_000,
        table_max_answers: 4096,
        tabling: true,
        ..EngineConfig::default()
    }
}

fn answer_set(goal: &Literal, solver: &mut Solver) -> BTreeSet<String> {
    solver
        .solve(std::slice::from_ref(goal))
        .iter()
        .map(|s| canonicalize(&s.subst.apply_literal(goal)).to_string())
        .collect()
}

#[test]
fn eight_threads_sharing_one_table_agree_with_single_threaded_run() {
    let n = 8i64;
    let kb = reachability_kb(n);
    let goal_list = goals(n);

    // Reference: single-threaded, untabled (ground truth semantics).
    let reference: Vec<BTreeSet<String>> = goal_list
        .iter()
        .map(|g| {
            let mut solver = Solver::new(&kb, PeerId::new("self")).with_config(EngineConfig {
                tabling: false,
                ..config()
            });
            answer_set(g, &mut solver)
        })
        .collect();

    let table = Arc::new(ConcurrentTable::new());
    let results: Vec<Vec<Vec<BTreeSet<String>>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let kb = &kb;
                let goal_list = &goal_list;
                let table = Arc::clone(&table);
                scope.spawn(move || {
                    let mut per_round = Vec::new();
                    for round in 0..ROUNDS {
                        // Each thread starts at a different offset so the
                        // first probes race on different variants, then
                        // overlap as the round progresses.
                        let mut sets = vec![BTreeSet::new(); goal_list.len()];
                        for k in 0..goal_list.len() {
                            let idx = (k + t * 3 + round) % goal_list.len();
                            let mut solver = Solver::new(kb, PeerId::new("self"))
                                .with_config(config())
                                .with_concurrent_table(Arc::clone(&table));
                            sets[idx] = answer_set(&goal_list[idx], &mut solver);
                        }
                        per_round.push(sets);
                    }
                    per_round
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (t, per_round) in results.iter().enumerate() {
        for (round, sets) in per_round.iter().enumerate() {
            for (i, set) in sets.iter().enumerate() {
                assert_eq!(
                    set, &reference[i],
                    "thread {t} round {round} diverged on goal {}",
                    goal_list[i]
                );
            }
        }
    }

    // The shared table actually absorbed the cross-thread traffic: far
    // more probes hit than variants were evaluated.
    let stats = table.stats();
    assert!(stats.hits > stats.misses, "expected warm reuse: {stats:?}");
    assert!(!table.is_empty());
}

#[test]
fn concurrent_table_stats_add_up_under_contention() {
    let kb = reachability_kb(6);
    let goal = Literal::new("path", vec![Term::var("A"), Term::var("B")]);
    let table = Arc::new(ConcurrentTable::new());
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let kb = &kb;
            let goal = &goal;
            let table = Arc::clone(&table);
            scope.spawn(move || {
                let mut solver = Solver::new(kb, PeerId::new("self"))
                    .with_config(config())
                    .with_concurrent_table(table);
                let _ = solver.solve(std::slice::from_ref(goal));
            });
        }
    });
    let stats = table.stats();
    // Every miss became exactly one completed entry (no lost updates):
    // racing threads may both begin the same variant, so misses ≥ len,
    // and every recorded answer was counted by an insert.
    assert!(stats.misses >= table.len() as u64);
    assert!(stats.inserts >= table.answer_count() as u64);
}
