//! Differential property test: SLD with answer tabling on and off yields
//! identical answer *sets* for random definite (function-free) programs.
//! Tabling dedups answers reached by several proofs, so the comparison is
//! on canonicalized instance sets, not multisets.

use peertrust_core::prelude::*;
use peertrust_engine::{canonicalize, ConcurrentTable, EngineConfig, Solver};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A random safe Datalog program over a small universe, mirroring the
/// generator in `prop_agreement.rs`: EDB facts `e{i}(c, c)` plus rules
/// `p{k}(X, Y) <- body...` where every head variable is bound by a
/// non-builtin body literal.
#[derive(Clone, Debug)]
struct Program {
    rules: Vec<Rule>,
}

fn arb_const() -> impl Strategy<Value = Term> {
    (0i64..4).prop_map(Term::int)
}

fn arb_program() -> impl Strategy<Value = Program> {
    let facts = prop::collection::vec(
        (0u32..3, arb_const(), arb_const())
            .prop_map(|(p, a, b)| Rule::fact(Literal::new(format!("e{p}").as_str(), vec![a, b]))),
        1..8,
    );
    let rules = prop::collection::vec(
        (0u32..2, 0u32..3, 0u32..3, any::<bool>(), any::<bool>()).prop_map(
            |(hk, b1, b2, use_idb, chain)| {
                let (x, y, z) = (Term::var("X"), Term::var("Y"), Term::var("Z"));
                let head = Literal::new(format!("p{hk}").as_str(), vec![x.clone(), y.clone()]);
                let first = Literal::new(
                    format!("e{b1}").as_str(),
                    vec![x.clone(), if chain { z.clone() } else { y.clone() }],
                );
                let second_name = if use_idb {
                    format!("p{}", b2 % 2)
                } else {
                    format!("e{b2}")
                };
                let second = Literal::new(second_name.as_str(), vec![if chain { z } else { x }, y]);
                Rule::horn(head, vec![first, second])
            },
        ),
        0..5,
    );
    (facts, rules).prop_map(|(f, r)| Program {
        rules: f.into_iter().chain(r).collect(),
    })
}

/// All answers for `goal`, as a canonical instance set.
fn answer_set(kb: &KnowledgeBase, goal: &Literal, tabling: bool) -> (BTreeSet<String>, bool) {
    let mut solver = Solver::new(kb, PeerId::new("self")).with_config(EngineConfig {
        max_solutions: 512,
        max_steps: 500_000,
        tabling,
        ..EngineConfig::default()
    });
    let sols = solver.solve(std::slice::from_ref(goal));
    let set = sols
        .iter()
        .map(|s| canonicalize(&s.subst.apply_literal(goal)).to_string())
        .collect();
    (set, solver.stats().step_budget_exhausted)
}

/// All answers for `goal` through a shared concurrent table.
fn concurrent_answer_set(
    kb: &KnowledgeBase,
    goal: &Literal,
    table: &Arc<ConcurrentTable>,
) -> (BTreeSet<String>, bool) {
    let mut solver = Solver::new(kb, PeerId::new("self"))
        .with_config(EngineConfig {
            max_solutions: 512,
            max_steps: 500_000,
            tabling: true,
            ..EngineConfig::default()
        })
        .with_concurrent_table(Arc::clone(table));
    let sols = solver.solve(std::slice::from_ref(goal));
    let set = sols
        .iter()
        .map(|s| canonicalize(&s.subst.apply_literal(goal)).to_string())
        .collect();
    (set, solver.stats().step_budget_exhausted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// For every queryable predicate pattern, the tabled and untabled
    /// solvers agree on the set of derived instances.
    #[test]
    fn tabling_preserves_answer_sets(prog in arb_program()) {
        let kb: KnowledgeBase = prog.rules.iter().cloned().collect();
        for pred in ["p0", "p1", "e0", "e1", "e2"] {
            let goal = Literal::new(pred, vec![Term::var("A"), Term::var("B")]);
            let (plain, plain_exhausted) = answer_set(&kb, &goal, false);
            let (tabled, tabled_exhausted) = answer_set(&kb, &goal, true);
            // A run that blew the step budget saw a truncated search
            // space; answer sets are only comparable on finished runs.
            prop_assume!(!plain_exhausted && !tabled_exhausted);
            prop_assert_eq!(
                &plain, &tabled,
                "answer sets diverge for {}: plain {:?} vs tabled {:?}",
                pred, plain, tabled
            );
        }
    }

    /// The concurrent table preserves answer sets too — including when
    /// one warm table is reused across every query of the program (the
    /// sharing pattern of the batch scheduler's solver threads).
    #[test]
    fn concurrent_tabling_preserves_answer_sets(prog in arb_program()) {
        let kb: KnowledgeBase = prog.rules.iter().cloned().collect();
        let table = Arc::new(ConcurrentTable::new());
        for pred in ["p0", "p1", "e0", "e1", "e2"] {
            let goal = Literal::new(pred, vec![Term::var("A"), Term::var("B")]);
            let (plain, plain_exhausted) = answer_set(&kb, &goal, false);
            let (shared, shared_exhausted) = concurrent_answer_set(&kb, &goal, &table);
            prop_assume!(!plain_exhausted && !shared_exhausted);
            prop_assert_eq!(
                &plain, &shared,
                "answer sets diverge for {}: plain {:?} vs concurrent-tabled {:?}",
                pred, plain, shared
            );
        }
    }

    /// Ground queries agree too (provability, not just enumeration).
    #[test]
    fn tabling_preserves_ground_provability(prog in arb_program(), a in 0i64..4, b in 0i64..4) {
        let kb: KnowledgeBase = prog.rules.iter().cloned().collect();
        for pred in ["p0", "p1"] {
            let goal = Literal::new(pred, vec![Term::int(a), Term::int(b)]);
            let (plain, pe) = answer_set(&kb, &goal, false);
            let (tabled, te) = answer_set(&kb, &goal, true);
            prop_assume!(!pe && !te);
            prop_assert_eq!(plain.is_empty(), tabled.is_empty(), "{} provability", pred);
        }
    }

    /// A second solve over the same table reuses completed variants: it
    /// never tries more rules than the cold solve, and hits the table for
    /// any variant the cold run completed.
    #[test]
    fn warm_solve_never_works_harder(prog in arb_program()) {
        let kb: KnowledgeBase = prog.rules.iter().cloned().collect();
        let goal = [Literal::new("p0", vec![Term::var("A"), Term::var("B")])];
        let mut solver = Solver::new(&kb, PeerId::new("self")).with_config(EngineConfig {
            max_solutions: 512,
            max_steps: 500_000,
            tabling: true,
            ..EngineConfig::default()
        });
        let cold = solver.solve(&goal);
        prop_assume!(!solver.stats().step_budget_exhausted);
        let cold_tries = solver.stats().rule_tries;
        let cold_answers: BTreeSet<String> = cold
            .iter()
            .map(|s| canonicalize(&s.subst.apply_literal(&goal[0])).to_string())
            .collect();

        let warm = solver.solve(&goal);
        let warm_answers: BTreeSet<String> = warm
            .iter()
            .map(|s| canonicalize(&s.subst.apply_literal(&goal[0])).to_string())
            .collect();
        prop_assert_eq!(cold_answers, warm_answers);
        prop_assert!(
            solver.stats().rule_tries <= cold_tries * 2,
            "warm solve re-derived from scratch: cold {} tries, total {}",
            cold_tries,
            solver.stats().rule_tries
        );
    }
}
