//! Differential property tests: the trail-based production solver and the
//! clone-per-branch reference interpreter ([`peertrust_engine::RefSolver`])
//! are observationally identical on the local fragment — same answers, in
//! the same order, with the same proof trees — and the answer table's
//! recorded contents match what the reference interpreter derives.

use peertrust_core::prelude::*;
use peertrust_engine::{
    canonicalize, AnswerTable, EngineConfig, Proof, RefSolver, Solution, Solver,
};
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// A random safe program over a small universe, mirroring the generator in
/// `prop_agreement.rs` but with an optional builtin guard in rule bodies so
/// the destructive builtin path is exercised too.
#[derive(Clone, Debug)]
struct Program {
    rules: Vec<Rule>,
}

fn arb_const() -> impl Strategy<Value = Term> {
    (0i64..4).prop_map(Term::int)
}

fn arb_program() -> impl Strategy<Value = Program> {
    let facts = prop::collection::vec(
        (0u32..3, arb_const(), arb_const())
            .prop_map(|(p, a, b)| Rule::fact(Literal::new(format!("e{p}").as_str(), vec![a, b]))),
        1..8,
    );
    let rules = prop::collection::vec(
        (
            0u32..2,
            0u32..3,
            0u32..3,
            any::<bool>(),
            any::<bool>(),
            prop::option::of(0i64..4),
        )
            .prop_map(|(hk, b1, b2, use_idb, chain, guard)| {
                let (x, y, z) = (Term::var("X"), Term::var("Y"), Term::var("Z"));
                let head = Literal::new(format!("p{hk}").as_str(), vec![x.clone(), y.clone()]);
                let first = Literal::new(
                    format!("e{b1}").as_str(),
                    vec![x.clone(), if chain { z.clone() } else { y.clone() }],
                );
                let second_name = if use_idb {
                    format!("p{}", b2 % 2)
                } else {
                    format!("e{b2}")
                };
                let second = Literal::new(
                    second_name.as_str(),
                    vec![if chain { z } else { x.clone() }, y],
                );
                let mut body = vec![first, second];
                if let Some(bound) = guard {
                    body.push(Literal::cmp("<=", x, Term::int(bound)));
                }
                Rule::horn(head, body)
            }),
        0..5,
    );
    (facts, rules).prop_map(|(f, r)| Program {
        rules: f.into_iter().chain(r).collect(),
    })
}

fn config() -> EngineConfig {
    EngineConfig {
        max_solutions: 512,
        max_steps: 500_000,
        ..EngineConfig::default()
    }
}

/// Render one solution as (answer instance, proof sketch) with variables
/// canonicalized per literal — identical evaluations must render equal.
fn render(goal: &Literal, sol: &Solution) -> (String, Vec<String>) {
    fn sketch(p: &Proof, out: &mut Vec<String>) {
        out.push(format!("{:?} {}", p.step, canonicalize(&p.goal)));
        for c in &p.children {
            sketch(c, out);
        }
    }
    let mut proofs = Vec::new();
    for p in &sol.proofs {
        sketch(p, &mut proofs);
    }
    (
        canonicalize(&sol.subst.apply_literal(goal)).to_string(),
        proofs,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The trail-based solver and the clone-per-branch reference produce
    /// the same solutions — same instances, same order, same proof trees.
    #[test]
    fn trail_solver_matches_reference_interpreter(prog in arb_program()) {
        let kb: KnowledgeBase = prog.rules.iter().cloned().collect();
        for pred in ["p0", "p1", "e0"] {
            let goal = Literal::new(pred, vec![Term::var("A"), Term::var("B")]);
            let mut production = Solver::new(&kb, PeerId::new("self")).with_config(config());
            let got = production.solve(std::slice::from_ref(&goal));
            let mut reference = RefSolver::new(&kb, PeerId::new("self")).with_config(config());
            let want = reference.solve(std::slice::from_ref(&goal));
            prop_assume!(!production.stats().step_budget_exhausted);

            let got_r: Vec<_> = got.iter().map(|s| render(&goal, s)).collect();
            let want_r: Vec<_> = want.iter().map(|s| render(&goal, s)).collect();
            prop_assert_eq!(
                &got_r, &want_r,
                "solvers diverge on {}: trail {:?} vs reference {:?}",
                pred, got_r, want_r
            );
        }
    }

    /// With tabling on, every completed table entry holds exactly the
    /// instances the reference interpreter derives for that variant.
    #[test]
    fn table_contents_match_reference_answers(prog in arb_program()) {
        let kb: KnowledgeBase = prog.rules.iter().cloned().collect();
        let goal = Literal::new("p0", vec![Term::var("A"), Term::var("B")]);
        let table = Rc::new(RefCell::new(AnswerTable::new()));
        let mut production = Solver::new(&kb, PeerId::new("self"))
            .with_config(EngineConfig { tabling: true, ..config() })
            .with_table(table.clone());
        let _ = production.solve(std::slice::from_ref(&goal));
        prop_assume!(!production.stats().step_budget_exhausted);

        let key = canonicalize(&goal);
        let stored: Option<BTreeSet<String>> = table
            .borrow_mut()
            .lookup(&key)
            .map(|answers| answers.iter().map(|a| canonicalize(&a.answer).to_string()).collect());
        // Entry may be absent (inline fallback after an incomplete run).
        let Some(stored) = stored else { return Ok(()); };

        let mut reference = RefSolver::new(&kb, PeerId::new("self")).with_config(config());
        let derived: BTreeSet<String> = reference
            .solve(std::slice::from_ref(&goal))
            .iter()
            .map(|s| canonicalize(&s.subst.apply_literal(&goal)).to_string())
            .collect();
        prop_assert_eq!(
            &stored, &derived,
            "table entry for {} diverges from reference", key
        );
    }
}
