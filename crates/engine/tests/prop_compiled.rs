//! Compiled-vs-reference differential property tests: the solver running
//! over a WAM-lite compiled KB ([`peertrust_engine::CompiledKb`]) is
//! observationally identical to both the interpreted solver and the
//! clone-per-branch reference interpreter on random policy graphs — same
//! solution sets, in the same order, with the same proof sketches — clean
//! and with tabling, and whole table contents agree entry by entry.
//!
//! Two compiled artifacts run as independent lanes: the full lowering
//! (head get-instructions *and* body put-instructions,
//! [`CompiledKb::compile`]) and the heads-only artifact
//! ([`CompiledKb::compile_heads_only`]), which falls back to interpreted
//! body instantiation. Divergence between them isolates a bug to the
//! body bytecode; divergence of both from the interpreter isolates it to
//! head matching or dispatch.

use peertrust_core::prelude::*;
use peertrust_engine::{
    canonicalize, AnswerTable, CompiledKb, CompiledSolver, EngineConfig, Proof, RefSolver,
    Solution, Solver,
};
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::sync::Arc;

/// Same random safe-program generator as `prop_differential.rs`: EDB
/// facts over a small constant universe, IDB rules with optional chain
/// variables and builtin guards.
#[derive(Clone, Debug)]
struct Program {
    rules: Vec<Rule>,
}

fn arb_const() -> impl Strategy<Value = Term> {
    (0i64..4).prop_map(Term::int)
}

fn arb_program() -> impl Strategy<Value = Program> {
    let facts = prop::collection::vec(
        (0u32..3, arb_const(), arb_const())
            .prop_map(|(p, a, b)| Rule::fact(Literal::new(format!("e{p}").as_str(), vec![a, b]))),
        1..8,
    );
    let rules = prop::collection::vec(
        (
            0u32..2,
            0u32..3,
            0u32..3,
            any::<bool>(),
            any::<bool>(),
            prop::option::of(0i64..4),
        )
            .prop_map(|(hk, b1, b2, use_idb, chain, guard)| {
                let (x, y, z) = (Term::var("X"), Term::var("Y"), Term::var("Z"));
                let head = Literal::new(format!("p{hk}").as_str(), vec![x.clone(), y.clone()]);
                let first = Literal::new(
                    format!("e{b1}").as_str(),
                    vec![x.clone(), if chain { z.clone() } else { y.clone() }],
                );
                let second_name = if use_idb {
                    format!("p{}", b2 % 2)
                } else {
                    format!("e{b2}")
                };
                let second = Literal::new(
                    second_name.as_str(),
                    vec![if chain { z } else { x.clone() }, y],
                );
                let mut body = vec![first, second];
                if let Some(bound) = guard {
                    body.push(Literal::cmp("<=", x, Term::int(bound)));
                }
                Rule::horn(head, body)
            }),
        0..5,
    );
    (facts, rules).prop_map(|(f, r)| Program {
        rules: f.into_iter().chain(r).collect(),
    })
}

/// Random delegation programs: ground `d{p}(a,b) @ "auth{k}"` facts, an
/// optional open-authority rule `d{p}(X,Y) @ V <- base(X,Y)` (lands in
/// the index's open bucket), and `q` rules whose bodies delegate to a
/// fixed authority. Exercises the `(pred, arity, authority-length)`
/// dispatch key and the switch-on-authority second-level index.
fn arb_auth_program() -> impl Strategy<Value = Program> {
    let base = prop::collection::vec(
        (arb_const(), arb_const()).prop_map(|(a, b)| Rule::fact(Literal::new("base", vec![a, b]))),
        1..4,
    );
    let delegated = prop::collection::vec(
        (0u32..2, arb_const(), arb_const(), 0u32..2).prop_map(|(p, a, b, k)| {
            Rule::fact(
                Literal::new(format!("d{p}").as_str(), vec![a, b])
                    .at(Term::str(format!("auth{k}").as_str())),
            )
        }),
        1..6,
    );
    let open = prop::collection::vec(
        (0u32..2).prop_map(|p| {
            let (x, y) = (Term::var("X"), Term::var("Y"));
            Rule::horn(
                Literal::new(format!("d{p}").as_str(), vec![x.clone(), y.clone()])
                    .at(Term::var("V")),
                vec![Literal::new("base", vec![x, y])],
            )
        }),
        0..2,
    );
    let deleg_rules = prop::collection::vec(
        (0u32..2, 0u32..2).prop_map(|(p, k)| {
            let (x, y) = (Term::var("X"), Term::var("Y"));
            Rule::horn(
                Literal::new("q", vec![x.clone(), y.clone()]),
                vec![Literal::new(format!("d{p}").as_str(), vec![x, y])
                    .at(Term::str(format!("auth{k}").as_str()))],
            )
        }),
        0..3,
    );
    (base, delegated, open, deleg_rules).prop_map(|(b, d, o, r)| Program {
        rules: b.into_iter().chain(d).chain(o).chain(r).collect(),
    })
}

fn config() -> EngineConfig {
    EngineConfig {
        max_solutions: 512,
        max_steps: 500_000,
        ..EngineConfig::default()
    }
}

/// Render one solution as (answer instance, proof sketch) with variables
/// canonicalized per literal — identical evaluations must render equal.
fn render(goal: &Literal, sol: &Solution) -> (String, Vec<String>) {
    fn sketch(p: &Proof, out: &mut Vec<String>) {
        out.push(format!("{:?} {}", p.step, canonicalize(&p.goal)));
        for c in &p.children {
            sketch(c, out);
        }
    }
    let mut proofs = Vec::new();
    for p in &sol.proofs {
        sketch(p, &mut proofs);
    }
    (
        canonicalize(&sol.subst.apply_literal(goal)).to_string(),
        proofs,
    )
}

/// Canonical snapshot of a whole answer table: variant key -> sorted
/// canonicalized answers (completed entries only).
fn table_snapshot(table: &AnswerTable) -> BTreeMap<String, BTreeSet<String>> {
    table
        .entries()
        .filter(|(_, d, _)| *d == peertrust_engine::Disposition::Complete)
        .map(|(k, _, answers)| {
            (
                canonicalize(k).to_string(),
                answers
                    .iter()
                    .map(|a| canonicalize(&a.answer).to_string())
                    .collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Body-compiled, heads-only-compiled, interpreted, and reference
    /// evaluation agree — same instances, same order, same proof sketches.
    #[test]
    fn compiled_matches_interpreter_and_reference(prog in arb_program()) {
        let kb: KnowledgeBase = prog.rules.iter().cloned().collect();
        let compiled = Arc::new(CompiledKb::compile(&kb));
        let heads_only = Arc::new(CompiledKb::compile_heads_only(&kb));
        prop_assert!(compiled.has_bodies());
        prop_assert!(!heads_only.has_bodies());
        for pred in ["p0", "p1", "e0"] {
            let goal = Literal::new(pred, vec![Term::var("A"), Term::var("B")]);

            let mut cs = CompiledSolver::new(&kb, PeerId::new("self"), compiled.clone())
                .with_config(config());
            let got = cs.solve(std::slice::from_ref(&goal));
            prop_assume!(!cs.stats().step_budget_exhausted);
            prop_assert_eq!(cs.stats().compiled_stale, 0, "artifact wrongly stale");

            let mut hs = CompiledSolver::new(&kb, PeerId::new("self"), heads_only.clone())
                .with_config(config());
            let want_h = hs.solve(std::slice::from_ref(&goal));
            prop_assert_eq!(hs.stats().compiled_body_instrs, 0, "heads-only ran body bytecode");

            let mut interp = Solver::new(&kb, PeerId::new("self")).with_config(config());
            let want_i = interp.solve(std::slice::from_ref(&goal));
            let mut reference = RefSolver::new(&kb, PeerId::new("self")).with_config(config());
            let want_r = reference.solve(std::slice::from_ref(&goal));

            let got_c: Vec<_> = got.iter().map(|s| render(&goal, s)).collect();
            let want_hr: Vec<_> = want_h.iter().map(|s| render(&goal, s)).collect();
            let want_ir: Vec<_> = want_i.iter().map(|s| render(&goal, s)).collect();
            let want_rr: Vec<_> = want_r.iter().map(|s| render(&goal, s)).collect();
            prop_assert_eq!(
                &got_c, &want_hr,
                "body-compiled diverges from heads-only on {}", pred
            );
            prop_assert_eq!(
                &got_c, &want_ir,
                "compiled diverges from interpreter on {}", pred
            );
            prop_assert_eq!(
                &got_c, &want_rr,
                "compiled diverges from reference on {}", pred
            );
        }
    }

    /// With tabling on, the compiled path fills the answer table with
    /// exactly what the interpreted path does — same variants, same
    /// answer sets — and both solvers return identical solutions.
    #[test]
    fn compiled_tabling_matches_interpreted_tabling(prog in arb_program()) {
        let kb: KnowledgeBase = prog.rules.iter().cloned().collect();
        let compiled = Arc::new(CompiledKb::compile(&kb));
        let heads_only = Arc::new(CompiledKb::compile_heads_only(&kb));
        let goal = Literal::new("p0", vec![Term::var("A"), Term::var("B")]);
        let tabled = EngineConfig { tabling: true, ..config() };

        let ct = Rc::new(RefCell::new(AnswerTable::new()));
        let mut cs = Solver::new(&kb, PeerId::new("self"))
            .with_config(tabled)
            .with_table(ct.clone())
            .with_compiled(compiled);
        let got = cs.solve(std::slice::from_ref(&goal));
        prop_assume!(!cs.stats().step_budget_exhausted);

        let ht = Rc::new(RefCell::new(AnswerTable::new()));
        let mut hs = Solver::new(&kb, PeerId::new("self"))
            .with_config(tabled)
            .with_table(ht.clone())
            .with_compiled(heads_only);
        let want_h = hs.solve(std::slice::from_ref(&goal));

        let it = Rc::new(RefCell::new(AnswerTable::new()));
        let mut is = Solver::new(&kb, PeerId::new("self"))
            .with_config(tabled)
            .with_table(it.clone());
        let want = is.solve(std::slice::from_ref(&goal));

        let got_r: Vec<_> = got.iter().map(|s| render(&goal, s)).collect();
        let hdso_r: Vec<_> = want_h.iter().map(|s| render(&goal, s)).collect();
        let want_r: Vec<_> = want.iter().map(|s| render(&goal, s)).collect();
        prop_assert_eq!(&got_r, &hdso_r, "tabled solutions diverge from heads-only");
        prop_assert_eq!(&got_r, &want_r, "tabled solutions diverge");

        let got_t = table_snapshot(&ct.borrow());
        let hdso_t = table_snapshot(&ht.borrow());
        let want_t = table_snapshot(&it.borrow());
        prop_assert_eq!(&got_t, &hdso_t, "table contents diverge from heads-only");
        prop_assert_eq!(&got_t, &want_t, "table contents diverge");
    }

    /// Appending rules after compilation (the negotiation pattern:
    /// credentials pushed mid-session) must not lose or corrupt answers:
    /// the prefix-fit compiled solver agrees with a fully interpreted
    /// solver over the grown KB.
    #[test]
    fn prefix_fit_matches_interpreter_after_appends(prog in arb_program(), extra in prop::collection::vec((0u32..3, arb_const(), arb_const()), 1..4)) {
        let mut kb: KnowledgeBase = prog.rules.iter().cloned().collect();
        let compiled = Arc::new(CompiledKb::compile(&kb));
        let heads_only = Arc::new(CompiledKb::compile_heads_only(&kb));
        for (p, a, b) in extra {
            kb.add_local(Rule::fact(Literal::new(format!("e{p}").as_str(), vec![a, b])));
        }
        for pred in ["p0", "e0"] {
            let goal = Literal::new(pred, vec![Term::var("A"), Term::var("B")]);
            let mut cs = Solver::new(&kb, PeerId::new("self"))
                .with_config(config())
                .with_compiled(compiled.clone());
            let got = cs.solve(std::slice::from_ref(&goal));
            prop_assume!(!cs.stats().step_budget_exhausted);
            prop_assert_eq!(cs.stats().compiled_stale, 0, "append must not go stale");

            let mut hs = Solver::new(&kb, PeerId::new("self"))
                .with_config(config())
                .with_compiled(heads_only.clone());
            let want_h = hs.solve(std::slice::from_ref(&goal));

            let mut interp = Solver::new(&kb, PeerId::new("self")).with_config(config());
            let want = interp.solve(std::slice::from_ref(&goal));

            let got_r: Vec<_> = got.iter().map(|s| render(&goal, s)).collect();
            let hdso_r: Vec<_> = want_h.iter().map(|s| render(&goal, s)).collect();
            let want_r: Vec<_> = want.iter().map(|s| render(&goal, s)).collect();
            prop_assert_eq!(&got_r, &hdso_r, "prefix-fit diverges from heads-only on {}", pred);
            prop_assert_eq!(&got_r, &want_r, "prefix-fit diverges on {}", pred);
        }
    }

    /// Delegation literals with `@ Authority` chains dispatch through the
    /// `(pred, arity, authority-length)` key and the switch-on-authority
    /// second-level index. All four lanes must agree on who can prove
    /// what — including rules whose bodies delegate to an authority.
    #[test]
    fn authority_dispatch_matches_interpreter(prog in arb_auth_program()) {
        let kb: KnowledgeBase = prog.rules.iter().cloned().collect();
        let compiled = Arc::new(CompiledKb::compile(&kb));
        let heads_only = Arc::new(CompiledKb::compile_heads_only(&kb));
        for (pred, auth) in [("d0", Some("auth0")), ("d0", Some("auth1")), ("d1", Some("auth0")), ("q", None)] {
            let mut goal = Literal::new(pred, vec![Term::var("A"), Term::var("B")]);
            if let Some(a) = auth {
                goal = goal.at(Term::str(a));
            }

            let mut cs = CompiledSolver::new(&kb, PeerId::new("self"), compiled.clone())
                .with_config(config());
            let got = cs.solve(std::slice::from_ref(&goal));
            prop_assume!(!cs.stats().step_budget_exhausted);
            prop_assert_eq!(cs.stats().compiled_stale, 0, "artifact wrongly stale");

            let mut hs = CompiledSolver::new(&kb, PeerId::new("self"), heads_only.clone())
                .with_config(config());
            let want_h = hs.solve(std::slice::from_ref(&goal));

            let mut interp = Solver::new(&kb, PeerId::new("self")).with_config(config());
            let want_i = interp.solve(std::slice::from_ref(&goal));
            let mut reference = RefSolver::new(&kb, PeerId::new("self")).with_config(config());
            let want_r = reference.solve(std::slice::from_ref(&goal));

            let got_c: Vec<_> = got.iter().map(|s| render(&goal, s)).collect();
            let want_hr: Vec<_> = want_h.iter().map(|s| render(&goal, s)).collect();
            let want_ir: Vec<_> = want_i.iter().map(|s| render(&goal, s)).collect();
            let want_rr: Vec<_> = want_r.iter().map(|s| render(&goal, s)).collect();
            prop_assert_eq!(
                &got_c, &want_hr,
                "auth dispatch diverges from heads-only on {}@{:?}", pred, auth
            );
            prop_assert_eq!(
                &got_c, &want_ir,
                "auth dispatch diverges from interpreter on {}@{:?}", pred, auth
            );
            prop_assert_eq!(
                &got_c, &want_rr,
                "auth dispatch diverges from reference on {}@{:?}", pred, auth
            );
        }
    }
}
