//! Compiled-vs-reference differential property tests: the solver running
//! over a WAM-lite compiled KB ([`peertrust_engine::CompiledKb`]) is
//! observationally identical to both the interpreted solver and the
//! clone-per-branch reference interpreter on random policy graphs — same
//! solution sets, in the same order, with the same proof sketches — clean
//! and with tabling, and whole table contents agree entry by entry.

use peertrust_core::prelude::*;
use peertrust_engine::{
    canonicalize, AnswerTable, CompiledKb, CompiledSolver, EngineConfig, Proof, RefSolver,
    Solution, Solver,
};
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::sync::Arc;

/// Same random safe-program generator as `prop_differential.rs`: EDB
/// facts over a small constant universe, IDB rules with optional chain
/// variables and builtin guards.
#[derive(Clone, Debug)]
struct Program {
    rules: Vec<Rule>,
}

fn arb_const() -> impl Strategy<Value = Term> {
    (0i64..4).prop_map(Term::int)
}

fn arb_program() -> impl Strategy<Value = Program> {
    let facts = prop::collection::vec(
        (0u32..3, arb_const(), arb_const())
            .prop_map(|(p, a, b)| Rule::fact(Literal::new(format!("e{p}").as_str(), vec![a, b]))),
        1..8,
    );
    let rules = prop::collection::vec(
        (
            0u32..2,
            0u32..3,
            0u32..3,
            any::<bool>(),
            any::<bool>(),
            prop::option::of(0i64..4),
        )
            .prop_map(|(hk, b1, b2, use_idb, chain, guard)| {
                let (x, y, z) = (Term::var("X"), Term::var("Y"), Term::var("Z"));
                let head = Literal::new(format!("p{hk}").as_str(), vec![x.clone(), y.clone()]);
                let first = Literal::new(
                    format!("e{b1}").as_str(),
                    vec![x.clone(), if chain { z.clone() } else { y.clone() }],
                );
                let second_name = if use_idb {
                    format!("p{}", b2 % 2)
                } else {
                    format!("e{b2}")
                };
                let second = Literal::new(
                    second_name.as_str(),
                    vec![if chain { z } else { x.clone() }, y],
                );
                let mut body = vec![first, second];
                if let Some(bound) = guard {
                    body.push(Literal::cmp("<=", x, Term::int(bound)));
                }
                Rule::horn(head, body)
            }),
        0..5,
    );
    (facts, rules).prop_map(|(f, r)| Program {
        rules: f.into_iter().chain(r).collect(),
    })
}

fn config() -> EngineConfig {
    EngineConfig {
        max_solutions: 512,
        max_steps: 500_000,
        ..EngineConfig::default()
    }
}

/// Render one solution as (answer instance, proof sketch) with variables
/// canonicalized per literal — identical evaluations must render equal.
fn render(goal: &Literal, sol: &Solution) -> (String, Vec<String>) {
    fn sketch(p: &Proof, out: &mut Vec<String>) {
        out.push(format!("{:?} {}", p.step, canonicalize(&p.goal)));
        for c in &p.children {
            sketch(c, out);
        }
    }
    let mut proofs = Vec::new();
    for p in &sol.proofs {
        sketch(p, &mut proofs);
    }
    (
        canonicalize(&sol.subst.apply_literal(goal)).to_string(),
        proofs,
    )
}

/// Canonical snapshot of a whole answer table: variant key -> sorted
/// canonicalized answers (completed entries only).
fn table_snapshot(table: &AnswerTable) -> BTreeMap<String, BTreeSet<String>> {
    table
        .entries()
        .filter(|(_, d, _)| *d == peertrust_engine::Disposition::Complete)
        .map(|(k, _, answers)| {
            (
                canonicalize(k).to_string(),
                answers
                    .iter()
                    .map(|a| canonicalize(&a.answer).to_string())
                    .collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Compiled, interpreted, and reference evaluation agree — same
    /// instances, same order, same proof sketches.
    #[test]
    fn compiled_matches_interpreter_and_reference(prog in arb_program()) {
        let kb: KnowledgeBase = prog.rules.iter().cloned().collect();
        let compiled = Arc::new(CompiledKb::compile(&kb));
        for pred in ["p0", "p1", "e0"] {
            let goal = Literal::new(pred, vec![Term::var("A"), Term::var("B")]);

            let mut cs = CompiledSolver::new(&kb, PeerId::new("self"), compiled.clone())
                .with_config(config());
            let got = cs.solve(std::slice::from_ref(&goal));
            prop_assume!(!cs.stats().step_budget_exhausted);
            prop_assert_eq!(cs.stats().compiled_stale, 0, "artifact wrongly stale");

            let mut interp = Solver::new(&kb, PeerId::new("self")).with_config(config());
            let want_i = interp.solve(std::slice::from_ref(&goal));
            let mut reference = RefSolver::new(&kb, PeerId::new("self")).with_config(config());
            let want_r = reference.solve(std::slice::from_ref(&goal));

            let got_c: Vec<_> = got.iter().map(|s| render(&goal, s)).collect();
            let want_ir: Vec<_> = want_i.iter().map(|s| render(&goal, s)).collect();
            let want_rr: Vec<_> = want_r.iter().map(|s| render(&goal, s)).collect();
            prop_assert_eq!(
                &got_c, &want_ir,
                "compiled diverges from interpreter on {}", pred
            );
            prop_assert_eq!(
                &got_c, &want_rr,
                "compiled diverges from reference on {}", pred
            );
        }
    }

    /// With tabling on, the compiled path fills the answer table with
    /// exactly what the interpreted path does — same variants, same
    /// answer sets — and both solvers return identical solutions.
    #[test]
    fn compiled_tabling_matches_interpreted_tabling(prog in arb_program()) {
        let kb: KnowledgeBase = prog.rules.iter().cloned().collect();
        let compiled = Arc::new(CompiledKb::compile(&kb));
        let goal = Literal::new("p0", vec![Term::var("A"), Term::var("B")]);
        let tabled = EngineConfig { tabling: true, ..config() };

        let ct = Rc::new(RefCell::new(AnswerTable::new()));
        let mut cs = Solver::new(&kb, PeerId::new("self"))
            .with_config(tabled)
            .with_table(ct.clone())
            .with_compiled(compiled);
        let got = cs.solve(std::slice::from_ref(&goal));
        prop_assume!(!cs.stats().step_budget_exhausted);

        let it = Rc::new(RefCell::new(AnswerTable::new()));
        let mut is = Solver::new(&kb, PeerId::new("self"))
            .with_config(tabled)
            .with_table(it.clone());
        let want = is.solve(std::slice::from_ref(&goal));

        let got_r: Vec<_> = got.iter().map(|s| render(&goal, s)).collect();
        let want_r: Vec<_> = want.iter().map(|s| render(&goal, s)).collect();
        prop_assert_eq!(&got_r, &want_r, "tabled solutions diverge");

        let got_t = table_snapshot(&ct.borrow());
        let want_t = table_snapshot(&it.borrow());
        prop_assert_eq!(&got_t, &want_t, "table contents diverge");
    }

    /// Appending rules after compilation (the negotiation pattern:
    /// credentials pushed mid-session) must not lose or corrupt answers:
    /// the prefix-fit compiled solver agrees with a fully interpreted
    /// solver over the grown KB.
    #[test]
    fn prefix_fit_matches_interpreter_after_appends(prog in arb_program(), extra in prop::collection::vec((0u32..3, arb_const(), arb_const()), 1..4)) {
        let mut kb: KnowledgeBase = prog.rules.iter().cloned().collect();
        let compiled = Arc::new(CompiledKb::compile(&kb));
        for (p, a, b) in extra {
            kb.add_local(Rule::fact(Literal::new(format!("e{p}").as_str(), vec![a, b])));
        }
        for pred in ["p0", "e0"] {
            let goal = Literal::new(pred, vec![Term::var("A"), Term::var("B")]);
            let mut cs = Solver::new(&kb, PeerId::new("self"))
                .with_config(config())
                .with_compiled(compiled.clone());
            let got = cs.solve(std::slice::from_ref(&goal));
            prop_assume!(!cs.stats().step_budget_exhausted);
            prop_assert_eq!(cs.stats().compiled_stale, 0, "append must not go stale");

            let mut interp = Solver::new(&kb, PeerId::new("self")).with_config(config());
            let want = interp.solve(std::slice::from_ref(&goal));

            let got_r: Vec<_> = got.iter().map(|s| render(&goal, s)).collect();
            let want_r: Vec<_> = want.iter().map(|s| render(&goal, s)).collect();
            prop_assert_eq!(&got_r, &want_r, "prefix-fit diverges on {}", pred);
        }
    }
}
