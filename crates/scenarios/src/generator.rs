//! Synthetic policy-graph workload generators.
//!
//! The paper's evaluation is qualitative; these generators create the
//! parameterized workloads behind the quantitative experiments in
//! EXPERIMENTS.md:
//!
//! * [`chain`] — E3: alternating release-dependency chains of depth *d*
//!   (credential *i*'s release policy demands credential *i + 1* from the
//!   other side; the deepest credential is public);
//! * [`random_policies`] — E4/E5: random bipartite policy graphs with a
//!   known ground-truth satisfiability (computed by unlock-set fixpoint);
//! * [`delegation_chain`] — E6: authority delegation chains of depth *d*
//!   (A0 delegates to A1 delegates to ... to An, which issued the
//!   subject's credential);
//! * [`fleet`] — E10: one server and *n* independent clients, for
//!   peer-count scaling;
//! * [`throughput_grid`] — E14: one server and *n* clients each behind a
//!   namespaced release chain, plus a round-robin job list for the batch
//!   scheduler's negotiations/sec benchmark;
//! * [`resilience_grid`] — E15: the E14 workload crossed with a grid of
//!   fault plans (drop rate × retry budget) for the resilience sweep.
//! * [`serving_workload`] — E18: the E14 peer construction with a job
//!   stream whose resource popularity is Zipf-distributed, for the
//!   open-loop serving driver (skewed sustained traffic).
//!
//! Every generator is deterministic in its seed.

use peertrust_core::{Literal, PeerId, Term};
use peertrust_crypto::KeyRegistry;
use peertrust_negotiation::{BatchFaults, BatchJob, NegotiationPeer, PeerMap, ResilienceConfig};
use peertrust_net::{FaultPlan, LinkFaults};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A ready-to-run negotiation workload.
pub struct Workload {
    pub peers: PeerMap,
    pub registry: KeyRegistry,
    pub requester: PeerId,
    pub responder: PeerId,
    pub goal: Literal,
    /// Ground truth: does a safe disclosure sequence exist?
    pub satisfiable: bool,
}

pub const CLIENT: &str = "Client";
pub const SERVER: &str = "Server";
const CA: &str = "WorkloadCA";

fn fresh_registry() -> KeyRegistry {
    let registry = KeyRegistry::new();
    registry.register_derived(PeerId::new(CA), 400);
    registry
}

/// E3: an alternating release-dependency chain of depth `depth >= 1`.
///
/// The server's resource needs `cred1` from the client; `cred{i}`'s
/// release policy needs `cred{i+1}` from the opposite side; `cred{depth}`
/// is public. The unique safe sequence discloses `cred{depth} ...
/// cred{1}` then the resource, so both strategies must succeed with
/// disclosure count = `depth`.
pub fn chain(depth: usize) -> Workload {
    assert!(depth >= 1, "chain depth must be at least 1");
    let registry = fresh_registry();
    let mut client = NegotiationPeer::new(CLIENT, registry.clone());
    let mut server = NegotiationPeer::new(SERVER, registry.clone());

    server
        .load_program(&format!(r#"resource(X) $ true <- cred1(X) @ "{CA}" @ X."#))
        .expect("resource rule parses");

    for i in 1..=depth {
        // Odd credentials belong to the client, even to the server.
        let (owner, owner_name) = if i % 2 == 1 {
            (&mut client, CLIENT)
        } else {
            (&mut server, SERVER)
        };
        let fact = format!(r#"cred{i}("{owner_name}") @ "{CA}" signedBy ["{CA}"]."#);
        owner.load_program(&fact).expect("credential parses");
        let release = if i == depth {
            format!(r#"cred{i}(X) @ Y $ true <-_true cred{i}(X) @ Y."#)
        } else {
            let next = i + 1;
            format!(
                r#"cred{i}(X) @ Y $ cred{next}(Requester) @ "{CA}" @ Requester <-_true cred{i}(X) @ Y."#
            )
        };
        owner.load_program(&release).expect("release rule parses");
    }

    let mut peers = PeerMap::new();
    peers.insert(client);
    peers.insert(server);
    Workload {
        peers,
        registry,
        requester: PeerId::new(CLIENT),
        responder: PeerId::new(SERVER),
        goal: Literal::new("resource", vec![Term::str(CLIENT)]),
        satisfiable: true,
    }
}

/// Configuration for [`random_policies`].
#[derive(Clone, Copy, Debug)]
pub struct RandomPolicyConfig {
    /// Credentials per side.
    pub creds_per_side: usize,
    /// Maximum release-policy dependencies per credential.
    pub max_deps: usize,
    /// Probability a credential's release policy is public (no deps).
    pub public_prob: f64,
    /// Allow cyclic dependencies (may make the instance unsatisfiable).
    pub allow_cycles: bool,
    /// Post-process a cyclic instance until it is satisfiable by
    /// construction: while the unlock fixpoint leaves the target
    /// credential locked, the lowest-indexed still-locked credential is
    /// made public, breaking one dependency cycle per step. Deterministic,
    /// and a no-op on instances that are already satisfiable.
    pub ensure_satisfiable: bool,
    pub seed: u64,
}

impl Default for RandomPolicyConfig {
    fn default() -> Self {
        RandomPolicyConfig {
            creds_per_side: 8,
            max_deps: 2,
            public_prob: 0.25,
            allow_cycles: true,
            ensure_satisfiable: false,
            seed: 1,
        }
    }
}

/// E4/E5: a random bipartite policy graph.
///
/// Each side holds `creds_per_side` credentials; each credential's release
/// policy is a conjunction of up to `max_deps` credentials of the *other*
/// side. The server's resource requires the client's credential 0. Ground
/// truth satisfiability is computed by the standard unlock fixpoint:
/// repeatedly unlock any credential all of whose dependencies are already
/// unlocked on the other side; the instance is satisfiable iff the
/// client's credential 0 ends up unlocked.
pub fn random_policies(cfg: RandomPolicyConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.creds_per_side;
    assert!(n >= 1);

    // deps[side][i] = indices (on the other side) this credential needs.
    let mut deps: [Vec<Vec<usize>>; 2] = [Vec::new(), Vec::new()];
    for side_deps in deps.iter_mut() {
        for i in 0..n {
            if rng.gen_bool(cfg.public_prob) {
                side_deps.push(Vec::new());
                continue;
            }
            let k = rng.gen_range(1..=cfg.max_deps);
            let mut d: Vec<usize> = Vec::new();
            for _ in 0..k {
                let j = if cfg.allow_cycles {
                    rng.gen_range(0..n)
                } else {
                    // Acyclic: only depend on strictly higher indices; if
                    // impossible, be public.
                    if i + 1 >= n {
                        continue;
                    }
                    rng.gen_range(i + 1..n)
                };
                if !d.contains(&j) {
                    d.push(j);
                }
            }
            side_deps.push(d);
        }
        // Pad in case the loop above pushed fewer entries (never happens,
        // but keep the invariant obvious).
        debug_assert_eq!(side_deps.len(), n);
    }

    // Ground truth: unlock fixpoint.
    fn unlock_fixpoint(deps: &[Vec<Vec<usize>>; 2], n: usize) -> [Vec<bool>; 2] {
        let mut unlocked = [vec![false; n], vec![false; n]];
        loop {
            let mut changed = false;
            for side in 0..2 {
                for i in 0..n {
                    if unlocked[side][i] {
                        continue;
                    }
                    if deps[side][i].iter().all(|&j| unlocked[1 - side][j]) {
                        unlocked[side][i] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                return unlocked;
            }
        }
    }

    if cfg.ensure_satisfiable {
        // Break dependency cycles until the target credential unlocks:
        // each step makes the lowest-indexed locked credential public,
        // which unlocks at least one credential per fixpoint — so this
        // terminates within 2n steps.
        loop {
            let unlocked = unlock_fixpoint(&deps, n);
            if unlocked[0][0] {
                break;
            }
            let (side, i) = (0..2)
                .flat_map(|s| (0..n).map(move |i| (s, i)))
                .find(|&(s, i)| !unlocked[s][i])
                .expect("target locked implies some credential is locked");
            deps[side][i].clear();
        }
    }

    let unlocked = unlock_fixpoint(&deps, n);
    let satisfiable = unlocked[0][0]; // side 0 = client, credential 0

    // Build the peers. Side 0 = client, side 1 = server.
    let registry = fresh_registry();
    let mut client = NegotiationPeer::new(CLIENT, registry.clone());
    let mut server = NegotiationPeer::new(SERVER, registry.clone());
    for (side, side_deps) in deps.iter().enumerate() {
        let (peer, owner_name) = if side == 0 {
            (&mut client, CLIENT)
        } else {
            (&mut server, SERVER)
        };
        for (i, cred_deps) in side_deps.iter().enumerate() {
            let pred = format!("c{side}_{i}");
            peer.load_program(&format!(
                r#"{pred}("{owner_name}") @ "{CA}" signedBy ["{CA}"]."#
            ))
            .expect("credential parses");
            let ctx = if cred_deps.is_empty() {
                "true".to_string()
            } else {
                cred_deps
                    .iter()
                    .map(|j| {
                        let other = 1 - side;
                        format!(r#"c{other}_{j}(Requester) @ "{CA}" @ Requester"#)
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            peer.load_program(&format!(r#"{pred}(X) @ Y $ {ctx} <-_true {pred}(X) @ Y."#))
                .expect("release rule parses");
        }
    }
    server
        .load_program(&format!(r#"resource(X) $ true <- c0_0(X) @ "{CA}" @ X."#))
        .expect("resource rule parses");

    let mut peers = PeerMap::new();
    peers.insert(client);
    peers.insert(server);
    Workload {
        peers,
        registry,
        requester: PeerId::new(CLIENT),
        responder: PeerId::new(SERVER),
        goal: Literal::new("resource", vec![Term::str(CLIENT)]),
        satisfiable,
    }
}

/// E6: an authority delegation chain of depth `depth`.
///
/// `A0` is the root authority the verifier trusts; each `Ai` delegates
/// attribute certification to `A(i+1)` with a signed rule; the last
/// authority issued the subject's credential (and keeps an issuance
/// record). The verifier's policy asks the subject, whose device fetches
/// the chain at run time by querying `A0` — credential-chain discovery.
pub fn delegation_chain(depth: usize) -> Workload {
    let registry = KeyRegistry::new();
    for i in 0..=depth {
        registry.register_derived(PeerId::new(&format!("A{i}")), 500 + i as u64);
    }
    let mut peers = PeerMap::new();

    // The verifier.
    let mut verifier = NegotiationPeer::new(SERVER, registry.clone());
    verifier
        .load_program(r#"resource(X) $ true <- attr(X) @ "A0" @ X."#)
        .expect("verifier rule parses");
    peers.insert(verifier);

    // The subject: holds only its leaf credential.
    let mut subject = NegotiationPeer::new(CLIENT, registry.clone());
    subject
        .load_program(&format!(
            r#"
            attr("{CLIENT}") @ "A{depth}" signedBy ["A{depth}"].
            attr(X) @ Y $ true <-_true attr(X) @ Y.
            "#
        ))
        .expect("subject program parses");
    peers.insert(subject);

    // The authorities.
    for i in 0..depth {
        let mut a = NegotiationPeer::new(format!("A{i}").as_str(), registry.clone());
        let next = i + 1;
        a.load_program(&format!(
            r#"
            attr(X) @ "A{i}" <- signedBy ["A{i}"] attr(X) @ "A{next}".
            attr(X) @ Y $ true <-_true attr(X) @ Y.
            "#
        ))
        .expect("delegation parses");
        peers.insert(a);
    }
    // The issuing (leaf) authority keeps issuance records.
    let mut leaf = NegotiationPeer::new(format!("A{depth}").as_str(), registry.clone());
    leaf.load_program(&format!(
        r#"
        attr("{CLIENT}") @ "A{depth}" signedBy ["A{depth}"].
        attr(X) @ Y $ true <-_true attr(X) @ Y.
        "#
    ))
    .expect("leaf program parses");
    peers.insert(leaf);

    Workload {
        peers,
        registry,
        requester: PeerId::new(CLIENT),
        responder: PeerId::new(SERVER),
        goal: Literal::new("resource", vec![Term::str(CLIENT)]),
        satisfiable: true,
    }
}

/// E10: one server, `n` independent clients, each with a depth-2 chain
/// (client credential guarded by a public server credential). Returns the
/// shared peer map plus per-client goals.
pub fn fleet(n: usize) -> (PeerMap, KeyRegistry, Vec<(PeerId, Literal)>) {
    let registry = fresh_registry();
    let mut peers = PeerMap::new();
    let mut server = NegotiationPeer::new(SERVER, registry.clone());
    server
        .load_program(&format!(
            r#"
            svc("{SERVER}") @ "{CA}" signedBy ["{CA}"].
            svc(X) @ Y $ true <-_true svc(X) @ Y.
            "#
        ))
        .expect("server creds parse");
    let mut goals = Vec::new();
    for c in 0..n {
        let name = format!("Client{c}");
        server
            .load_program(&format!(
                r#"resource{c}(X) $ true <- id{c}(X) @ "{CA}" @ X."#
            ))
            .expect("resource rule parses");
        let mut client = NegotiationPeer::new(name.as_str(), registry.clone());
        client
            .load_program(&format!(
                r#"
                id{c}("{name}") @ "{CA}" signedBy ["{CA}"].
                id{c}(X) @ Y $ svc(Requester) @ "{CA}" @ Requester <-_true id{c}(X) @ Y.
                "#
            ))
            .expect("client program parses");
        goals.push((
            PeerId::new(&name),
            Literal::new(
                format!("resource{c}").as_str(),
                vec![Term::str(name.as_str())],
            ),
        ));
        peers.insert(client);
    }
    peers.insert(server);
    (peers, registry, goals)
}

/// A ready-to-run batch-scheduler workload: the shared peer map plus the
/// job list to feed `negotiate_batch`.
pub struct BatchWorkload {
    pub peers: PeerMap,
    pub registry: KeyRegistry,
    pub jobs: Vec<BatchJob>,
}

/// E14: one server, `clients` clients, each client `c` gated by its own
/// alternating release chain of depth `depth` over namespaced predicates
/// (`cred{c}_{i}`, exactly the [`chain`] construction), and a job list of
/// `repeats * clients` negotiations round-robin over the clients.
///
/// Distinct predicates per client mean jobs exercise distinct goal
/// variants (no accidental sharing through the engine table), while
/// repeats of the same client exercise warm-cache reuse. Every job is
/// satisfiable with exactly `depth` disclosures.
pub fn throughput_grid(clients: usize, repeats: usize, depth: usize) -> BatchWorkload {
    assert!(clients >= 1 && repeats >= 1 && depth >= 1);
    let registry = fresh_registry();
    let mut server = NegotiationPeer::new(SERVER, registry.clone());
    let mut peers = PeerMap::new();
    let mut client_ids = Vec::new();

    for c in 0..clients {
        let name = format!("Client{c}");
        let mut client = NegotiationPeer::new(name.as_str(), registry.clone());
        server
            .load_program(&format!(
                r#"resource{c}(X) $ true <- cred{c}_1(X) @ "{CA}" @ X."#
            ))
            .expect("resource rule parses");
        for i in 1..=depth {
            // Odd credentials belong to the client, even to the server.
            let (owner, owner_name): (&mut NegotiationPeer, &str) = if i % 2 == 1 {
                (&mut client, name.as_str())
            } else {
                (&mut server, SERVER)
            };
            let pred = format!("cred{c}_{i}");
            owner
                .load_program(&format!(
                    r#"{pred}("{owner_name}") @ "{CA}" signedBy ["{CA}"]."#
                ))
                .expect("credential parses");
            let release = if i == depth {
                format!(r#"{pred}(X) @ Y $ true <-_true {pred}(X) @ Y."#)
            } else {
                let next = format!("cred{c}_{}", i + 1);
                format!(
                    r#"{pred}(X) @ Y $ {next}(Requester) @ "{CA}" @ Requester <-_true {pred}(X) @ Y."#
                )
            };
            owner.load_program(&release).expect("release rule parses");
        }
        client_ids.push(PeerId::new(&name));
        peers.insert(client);
    }
    peers.insert(server);

    let server_id = PeerId::new(SERVER);
    let mut jobs = Vec::with_capacity(clients * repeats);
    for _ in 0..repeats {
        for (c, client_id) in client_ids.iter().enumerate() {
            jobs.push(BatchJob::new(
                *client_id,
                server_id,
                Literal::new(
                    format!("resource{c}").as_str(),
                    vec![Term::str(format!("Client{c}").as_str())],
                ),
            ));
        }
    }
    BatchWorkload {
        peers,
        registry,
        jobs,
    }
}

/// An open-loop serving workload: the [`throughput_grid`] peer
/// construction (one server, `resources` clients each behind its own
/// namespaced release chain) plus a stream of `jobs` arrival goals whose
/// resource popularity follows a Zipf(`zipf_s`) distribution — rank-`k`
/// resource drawn with probability proportional to `1 / k^s`, the skew
/// web resource traffic classically shows. Skew is what makes the
/// serving driver's cache layers earn their keep: a small hot set
/// dominates the offered load.
pub struct ServingWorkload {
    pub peers: PeerMap,
    pub registry: KeyRegistry,
    /// `jobs[i]` is the goal of the `i`-th arrival.
    pub jobs: Vec<BatchJob>,
    /// Arrivals per resource (index = resource rank, descending weight).
    pub popularity: Vec<usize>,
}

/// Generate a [`ServingWorkload`]. Deterministic in `seed`: the sampled
/// job stream (and hence everything the serving driver does with it) is
/// identical across runs. `zipf_s == 0.0` degrades to uniform popularity.
pub fn serving_workload(
    resources: usize,
    depth: usize,
    jobs: usize,
    zipf_s: f64,
    seed: u64,
) -> ServingWorkload {
    assert!(resources >= 1 && depth >= 1);
    assert!(zipf_s >= 0.0, "zipf exponent must be non-negative");
    let base = throughput_grid(resources, 1, depth);
    // Zipf CDF over ranks 1..=resources (rank-`k` resource has weight
    // 1/k^s before normalization).
    let mut cdf = Vec::with_capacity(resources);
    let mut acc = 0.0;
    for k in 1..=resources {
        acc += 1.0 / (k as f64).powf(zipf_s);
        cdf.push(acc);
    }
    let total = acc;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut popularity = vec![0usize; resources];
    let sampled = (0..jobs)
        .map(|_| {
            let u = rng.gen_range(0.0..1.0) * total;
            let rank = cdf.partition_point(|&c| c <= u).min(resources - 1);
            popularity[rank] += 1;
            base.jobs[rank].clone()
        })
        .collect();
    ServingWorkload {
        peers: base.peers,
        registry: base.registry,
        jobs: sampled,
        popularity,
    }
}

/// One cell of the E15 resilience sweep: a fault plan at `drop_rate` and
/// a retry budget, ready to drop into `BatchConfig::faults`.
pub struct ResilienceGridPoint {
    /// `"drop{pct}_retry{budget}"`, for metric names and reports.
    pub label: String,
    pub drop_rate: f64,
    pub max_retries: u32,
    pub faults: BatchFaults,
}

/// E15: the [`throughput_grid`] workload crossed with a fault grid —
/// every combination of `drop_rates` × `retry_budgets` becomes a
/// [`ResilienceGridPoint`] whose plan drops (and proportionately
/// duplicates/delays/reorders/corrupts, via [`LinkFaults::lossy`]) at
/// the given rate. Deadlines are sized so the budget, not the clock, is
/// the binding constraint. Deterministic in `seed`.
pub fn resilience_grid(
    clients: usize,
    repeats: usize,
    depth: usize,
    seed: u64,
    drop_rates: &[f64],
    retry_budgets: &[u32],
) -> (BatchWorkload, Vec<ResilienceGridPoint>) {
    let workload = throughput_grid(clients, repeats, depth);
    let mut points = Vec::with_capacity(drop_rates.len() * retry_budgets.len());
    for &drop_rate in drop_rates {
        for &max_retries in retry_budgets {
            let link = if drop_rate == 0.0 {
                LinkFaults::NONE
            } else {
                LinkFaults::lossy(drop_rate)
            };
            points.push(ResilienceGridPoint {
                label: format!(
                    "drop{}_retry{max_retries}",
                    (drop_rate * 100.0).round() as u32
                ),
                drop_rate,
                max_retries,
                faults: BatchFaults {
                    plan: FaultPlan::uniform(seed, link),
                    resilience: ResilienceConfig {
                        max_retries,
                        query_deadline_ticks: 256,
                        ..ResilienceConfig::default()
                    },
                },
            });
        }
    }
    (workload, points)
}

/// A cyclic delegation-mesh workload for the GEM experiments (E17).
pub struct MeshWorkload {
    pub peers: PeerMap,
    pub registry: KeyRegistry,
    /// The ring members `G0 .. G{n-1}` — every one is a valid initiator
    /// (the converged answer set is initiator-independent).
    pub peer_ids: Vec<PeerId>,
    /// The peer owning the goal (`G0`).
    pub responder: PeerId,
    /// `r(n * laps) @ "G0"` — reachable only by pumping instances around
    /// the ring `laps` times.
    pub goal: Literal,
    /// Ring laps required to derive the goal.
    pub laps: usize,
}

/// E17: a ring of `n` mutually recursive delegators, satisfiable by
/// construction — but only for a driver that can resolve cross-peer
/// loops.
///
/// Each ring member `Gi` defines its `r` instances from its ring
/// successor: `r(Y) @ "Gi" <- r(X) @ "Gsucc" @ "Gsucc", next(X, Y).` —
/// the delegated literal is resolved with `X` unbound, so every hop
/// re-requests the same goal variant and the ring closes into one
/// cross-peer SCC. The seed fact `r(0)` lives at `G0`, and the step fact
/// `next(k-1, k)` at the unique peer whose rule derives `r(k)` (index
/// `(n - k % n) % n`), so instances advance one `next` step per hop and
/// return to `G0` once per lap.
///
/// The goal `r(n * laps) @ "G0"` therefore needs `laps` full laps. The
/// classical driver unrolls exactly one lap before the variant check
/// refuses the loop, so with `laps >= 2` it fails with `CycleDetected`
/// while the GEM fixpoint converges (within `n * laps + 2` rounds).
///
/// With `chords`, `G0` additionally copies instances straight from `G2`
/// (`r(X) @ "G0" <- r(X) @ "G2" @ "G2".`), closing a second loop that
/// skips `G1` — the two loops overlap and must merge into one SCC. One
/// chord, not one per peer: every extra copy edge multiplies the
/// re-descent paths the fixpoint re-evaluates each round, so a densely
/// chorded mesh blows the per-peer query budget long before it converges.
pub fn delegation_mesh(n: usize, laps: usize, chords: bool) -> MeshWorkload {
    assert!(n >= 2, "a delegation mesh needs at least two peers");
    assert!(laps >= 1);
    let registry = fresh_registry();
    let mut peers = PeerMap::new();
    let mut peer_ids = Vec::with_capacity(n);
    let target = n * laps;

    for i in 0..n {
        let name = format!("G{i}");
        let succ = format!("G{}", (i + 1) % n);
        let mut program = format!(
            r#"
            r(Y) @ "{name}" <- r(X) @ "{succ}" @ "{succ}", next(X, Y).
            r(X) @ Y $ true <-_true r(X) @ Y.
            "#
        );
        if chords && n > 2 && i == 0 {
            program.push_str(r#"r(X) @ "G0" <- r(X) @ "G2" @ "G2"."#);
            program.push('\n');
        }
        if i == 0 {
            program.push_str(&format!(r#"r(0) @ "{name}"."#));
            program.push('\n');
        }
        // next(k-1, k) lives at the peer whose rule derives r(k).
        for k in 1..=target {
            if (n - k % n) % n == i {
                program.push_str(&format!("next({}, {k}).\n", k - 1));
            }
        }
        let mut peer = NegotiationPeer::new(name.as_str(), registry.clone());
        peer.load_program(&program).expect("mesh program parses");
        peers.insert(peer);
        peer_ids.push(PeerId::new(&name));
    }

    MeshWorkload {
        peers,
        registry,
        peer_ids,
        responder: PeerId::new("G0"),
        goal: peertrust_parser::parse_literal(&format!(r#"r({target}) @ "G0""#))
            .expect("mesh goal parses"),
        laps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_negotiation::{verify_safe_sequence, Strategy};
    use peertrust_net::{NegotiationId, SimNetwork};

    fn run(w: &mut Workload, strategy: Strategy) -> peertrust_negotiation::NegotiationOutcome {
        let mut net = SimNetwork::new(w.requester.0.index() as u64);
        strategy.run(
            &mut w.peers,
            &mut net,
            NegotiationId(1),
            w.requester,
            w.responder,
            w.goal.clone(),
        )
    }

    #[test]
    fn chain_depth_1_succeeds_trivially() {
        for strategy in Strategy::ALL {
            let mut w = chain(1);
            let out = run(&mut w, strategy);
            assert!(out.success, "{strategy} on depth 1: {:#?}", out.refusals);
            assert_eq!(out.credential_count(), 1);
        }
    }

    #[test]
    fn chain_messages_grow_with_depth() {
        let mut sizes = Vec::new();
        for depth in [1, 3, 5, 7] {
            let mut w = chain(depth);
            let out = run(&mut w, Strategy::Parsimonious);
            assert!(out.success, "depth {depth}: {:#?}", out.refusals);
            assert_eq!(out.credential_count(), depth, "depth {depth}");
            verify_safe_sequence(&out).unwrap();
            sizes.push(out.messages);
        }
        assert!(
            sizes.windows(2).all(|w| w[0] < w[1]),
            "messages must grow with depth: {sizes:?}"
        );
    }

    #[test]
    fn chain_eager_matches_parsimonious_disclosures() {
        // On a pure chain, every credential is needed, so both strategies
        // disclose exactly `depth` credentials.
        for depth in [2, 4, 6] {
            let mut wp = chain(depth);
            let pars = run(&mut wp, Strategy::Parsimonious);
            let mut we = chain(depth);
            let eag = run(&mut we, Strategy::Eager);
            assert!(pars.success && eag.success, "depth {depth}");
            assert_eq!(pars.credential_count(), depth);
            assert_eq!(eag.credential_count(), depth);
            assert!(eag.queries == 0 && pars.queries > 0);
        }
    }

    #[test]
    fn random_acyclic_instances_are_satisfiable_and_strategies_agree() {
        for seed in 0..10 {
            let cfg = RandomPolicyConfig {
                allow_cycles: false,
                seed,
                ..RandomPolicyConfig::default()
            };
            let w = random_policies(cfg);
            assert!(
                w.satisfiable,
                "acyclic instances always unlock (seed {seed})"
            );
            for strategy in Strategy::ALL {
                let mut w = random_policies(cfg);
                let out = run(&mut w, strategy);
                assert!(out.success, "seed {seed} {strategy}: {:#?}", out.refusals);
            }
        }
    }

    #[test]
    fn random_cyclic_instances_match_ground_truth() {
        let mut sat = 0;
        let mut unsat = 0;
        for seed in 0..30 {
            let cfg = RandomPolicyConfig {
                allow_cycles: true,
                public_prob: 0.15,
                seed,
                ..RandomPolicyConfig::default()
            };
            let w = random_policies(cfg);
            if w.satisfiable {
                sat += 1;
            } else {
                unsat += 1;
            }
            // The eager strategy is complete: success iff satisfiable.
            let mut we = random_policies(cfg);
            let out = run(&mut we, Strategy::Eager);
            assert_eq!(
                out.success, w.satisfiable,
                "eager must match ground truth (seed {seed})"
            );
        }
        assert!(
            sat > 0 && unsat > 0,
            "sweep covers both outcomes ({sat}/{unsat})"
        );
    }

    #[test]
    fn delegation_chain_discovers_and_verifies() {
        for depth in [1, 2, 4] {
            let mut w = delegation_chain(depth);
            let out = run(&mut w, Strategy::Parsimonious);
            assert!(out.success, "depth {depth}: {:#?}", out.refusals);
            verify_safe_sequence(&out).unwrap();
        }
    }

    #[test]
    fn throughput_grid_jobs_all_succeed_in_a_batch() {
        use peertrust_negotiation::{negotiate_batch, BatchConfig};
        let w = throughput_grid(3, 2, 2);
        assert_eq!(w.jobs.len(), 6);
        let report = negotiate_batch(
            &w.peers,
            &w.jobs,
            &BatchConfig::default(),
            &peertrust_telemetry::Telemetry::disabled(),
        );
        assert_eq!(report.outcomes.len(), 6);
        for (i, out) in report.outcomes.iter().enumerate() {
            assert!(out.success, "job {i}: {:#?}", out.refusals);
            assert_eq!(out.credential_count(), 2, "job {i} discloses the chain");
            verify_safe_sequence(out).unwrap();
        }
        assert_eq!(report.stats.successes, 6);
    }

    #[test]
    fn throughput_grid_warm_cache_matches_cold_results() {
        use peertrust_negotiation::{negotiate_batch, BatchConfig, SharedRemoteAnswerCache};
        let w = throughput_grid(2, 3, 2);
        let cold = negotiate_batch(
            &w.peers,
            &w.jobs,
            &BatchConfig::default(),
            &peertrust_telemetry::Telemetry::disabled(),
        );
        let cache = SharedRemoteAnswerCache::new();
        let warm_cfg = BatchConfig {
            workers: 2,
            shared_cache: Some(cache),
            ..BatchConfig::default()
        };
        let warm = negotiate_batch(
            &w.peers,
            &w.jobs,
            &warm_cfg,
            &peertrust_telemetry::Telemetry::disabled(),
        );
        for (c, wo) in cold.outcomes.iter().zip(warm.outcomes.iter()) {
            assert_eq!(c.success, wo.success);
            assert_eq!(c.granted, wo.granted);
            assert_eq!(c.requester, wo.requester);
            assert_eq!(c.goal, wo.goal);
        }
    }

    #[test]
    fn serving_workload_is_deterministic_and_zipf_skewed() {
        let key = |w: &ServingWorkload| {
            w.jobs
                .iter()
                .map(|j| format!("{}>{}:{}", j.requester, j.responder, j.goal))
                .collect::<Vec<_>>()
        };
        let a = serving_workload(8, 2, 400, 1.1, 42);
        let b = serving_workload(8, 2, 400, 1.1, 42);
        assert_eq!(key(&a), key(&b), "same seed, same stream");
        assert_eq!(a.popularity, b.popularity);
        let c = serving_workload(8, 2, 400, 1.1, 43);
        assert_ne!(key(&a), key(&c), "different seed, different stream");

        assert_eq!(a.jobs.len(), 400);
        assert_eq!(a.popularity.iter().sum::<usize>(), 400);
        // Zipf skew: the hottest resource dominates the coldest, and the
        // hot half carries most of the traffic.
        assert!(a.popularity[0] > a.popularity[7] * 2, "{:?}", a.popularity);
        let hot: usize = a.popularity[..4].iter().sum();
        assert!(hot * 2 > 400, "hot half carries most traffic");
        // s = 0 degrades to roughly uniform.
        let u = serving_workload(8, 2, 400, 0.0, 42);
        assert!(
            u.popularity.iter().all(|&n| n > 20 && n < 80),
            "{:?}",
            u.popularity
        );
    }

    #[test]
    fn serving_workload_jobs_negotiate_successfully() {
        let w = serving_workload(3, 2, 6, 1.0, 7);
        use peertrust_negotiation::{negotiate_batch, BatchConfig};
        let report = negotiate_batch(
            &w.peers,
            &w.jobs,
            &BatchConfig::default(),
            &peertrust_telemetry::Telemetry::disabled(),
        );
        assert_eq!(report.stats.successes, 6, "every sampled goal succeeds");
    }

    #[test]
    fn resilience_grid_points_converge_with_retries() {
        use peertrust_negotiation::{negotiate_batch, BatchConfig};
        let (w, points) = resilience_grid(2, 2, 2, 17, &[0.0, 0.2], &[4]);
        assert_eq!(points.len(), 2);
        let clean = negotiate_batch(
            &w.peers,
            &w.jobs,
            &BatchConfig::default(),
            &peertrust_telemetry::Telemetry::disabled(),
        );
        for point in points {
            let report = negotiate_batch(
                &w.peers,
                &w.jobs,
                &BatchConfig {
                    faults: Some(point.faults.clone()),
                    ..BatchConfig::default()
                },
                &peertrust_telemetry::Telemetry::disabled(),
            );
            assert_eq!(
                report.stats.converged, report.stats.jobs,
                "{} must converge",
                point.label
            );
            assert_eq!(
                report.stats.successes, clean.stats.successes,
                "{}",
                point.label
            );
        }
    }

    #[test]
    fn ensure_satisfiable_forces_cyclic_instances_to_unlock() {
        for seed in 0..30 {
            let cfg = RandomPolicyConfig {
                allow_cycles: true,
                public_prob: 0.15,
                ensure_satisfiable: true,
                seed,
                ..RandomPolicyConfig::default()
            };
            let w = random_policies(cfg);
            assert!(w.satisfiable, "seed {seed} must be satisfiable");
            let mut we = random_policies(cfg);
            let out = run(&mut we, Strategy::Eager);
            assert!(out.success, "seed {seed}: {:#?}", out.refusals);
        }
    }

    #[test]
    fn delegation_mesh_needs_gem_beyond_one_lap() {
        use peertrust_negotiation::{negotiate, RefusalReason, SessionConfig};
        let gem_cfg = SessionConfig {
            gem: true,
            gem_max_rounds: 32,
            ..SessionConfig::default()
        };
        for (n, laps, chords) in [(2, 2, false), (3, 2, false), (4, 2, true)] {
            // Classical driver: one lap of unrolling, then CycleDetected.
            let mut w = delegation_mesh(n, laps, chords);
            let mut net = SimNetwork::new(5);
            let initiator = w.peer_ids[1];
            let out = negotiate(
                &mut w.peers,
                &mut net,
                SessionConfig::default(),
                NegotiationId(1),
                initiator,
                w.responder,
                w.goal.clone(),
            );
            assert!(!out.success, "n={n} laps={laps}: classical must refuse");
            assert!(out
                .refusals
                .iter()
                .any(|r| r.reason == RefusalReason::CycleDetected));

            // GEM: the fixpoint pumps instances around the ring.
            let mut w = delegation_mesh(n, laps, chords);
            let mut net = SimNetwork::new(5);
            let out = negotiate(
                &mut w.peers,
                &mut net,
                gem_cfg.clone(),
                NegotiationId(1),
                initiator,
                w.responder,
                w.goal.clone(),
            );
            assert!(
                out.success,
                "n={n} laps={laps} chords={chords}: {:#?}",
                out.refusals
            );
            assert_eq!(out.granted[0], w.goal);
            assert!(!out
                .refusals
                .iter()
                .any(|r| r.reason == RefusalReason::CycleDetected));
        }
    }

    #[test]
    fn delegation_mesh_single_lap_succeeds_classically() {
        // laps = 1 is within the classical driver's single unrolling —
        // the mesh generator's satisfiability claim degenerates cleanly.
        let mut w = delegation_mesh(3, 1, false);
        let out = run(
            &mut Workload {
                peers: std::mem::take(&mut w.peers),
                registry: w.registry.clone(),
                requester: w.peer_ids[2],
                responder: w.responder,
                goal: w.goal.clone(),
                satisfiable: true,
            },
            Strategy::Parsimonious,
        );
        assert!(out.success, "{:#?}", out.refusals);
    }

    #[test]
    fn fleet_clients_negotiate_independently() {
        let (mut peers, _reg, goals) = fleet(4);
        let mut net = SimNetwork::new(99);
        for (i, (client, goal)) in goals.iter().enumerate() {
            let out = peertrust_negotiation::negotiate(
                &mut peers,
                &mut net,
                peertrust_negotiation::SessionConfig::default(),
                NegotiationId(i as u64),
                *client,
                PeerId::new(SERVER),
                goal.clone(),
            );
            assert!(out.success, "client {i}: {:#?}", out.refusals);
        }
    }
}
