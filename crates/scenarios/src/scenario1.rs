//! Scenario 1: Alice & E-Learn (paper §4.1).
//!
//! E-Learn Associates sells learning resources; clients get a discount if
//! they are preferred customers at the ELENA consortium. ELENA has given
//! E-Learn a signed rule deriving "preferred" status from UIUC studentship;
//! UIUC delegates student certification to its registrar; Alice holds her
//! registrar-issued student ID plus a copy of the delegation rule, and
//! releases student credentials only to Better Business Bureau members who
//! prove membership themselves; E-Learn holds a BBB membership credential.
//!
//! The policies below are the paper's, verbatim where runnable. Two
//! adaptations, both documented in DESIGN.md: (1) credentials are written
//! in the `lit @ issuer` normal form its §3.2 axioms make equivalent to
//! `lit signedBy [issuer]`; (2) release policies the paper says exist but
//! does not show (e.g. for E-Learn's BBB membership) are made explicit
//! with `$ true`.
//!
//! [`Scenario1::run`] negotiates Alice's access to the discounted
//! enrollment; [`Ablation1`] removes one ingredient at a time, and the
//! negotiation must then fail — the paper's claim is *iff*.

use peertrust_core::{Literal, PeerId, Term};
use peertrust_crypto::KeyRegistry;
use peertrust_negotiation::{NegotiationOutcome, NegotiationPeer, PeerMap, Strategy};
use peertrust_net::{NegotiationId, SimNetwork};

/// Which ingredient to remove (for the E1 ablation study).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ablation1 {
    /// Everything in place: negotiation must succeed.
    None,
    /// Alice has no registrar-issued student ID.
    NoStudentId,
    /// Alice lacks the cached UIUC -> Registrar delegation rule.
    NoDelegationRule,
    /// Alice has no release policy for student credentials (default
    /// private applies).
    NoReleasePolicy,
    /// E-Learn cannot prove BBB membership.
    NoBbbCredential,
    /// E-Learn never cached ELENA's signed "preferred" rule.
    NoElenaRule,
}

impl Ablation1 {
    pub const ALL: [Ablation1; 6] = [
        Ablation1::None,
        Ablation1::NoStudentId,
        Ablation1::NoDelegationRule,
        Ablation1::NoReleasePolicy,
        Ablation1::NoBbbCredential,
        Ablation1::NoElenaRule,
    ];
}

/// The built scenario: peers, shared registry, and the standard goal.
pub struct Scenario1 {
    pub peers: PeerMap,
    pub registry: KeyRegistry,
}

pub const ALICE: &str = "Alice";
pub const ELEARN: &str = "E-Learn";
pub const COURSE: &str = "spanish101";

impl Scenario1 {
    /// Build the full scenario.
    pub fn build() -> Scenario1 {
        Scenario1::build_ablated(Ablation1::None)
    }

    /// Build with one ingredient removed.
    pub fn build_ablated(ablation: Ablation1) -> Scenario1 {
        let registry = KeyRegistry::new();
        for (i, issuer) in ["UIUC", "UIUC Registrar", "ELENA", "BBB"]
            .iter()
            .enumerate()
        {
            registry.register_derived(PeerId::new(issuer), 100 + i as u64);
        }
        let mut peers = PeerMap::new();

        // ---------------- E-Learn ----------------
        let mut elearn = NegotiationPeer::new(ELEARN, registry.clone());
        // Release pattern + derivation rules for the discount service
        // (§4.1, verbatim).
        elearn
            .load_program(
                r#"
                discountEnroll(Course, Party) $ Requester = Party <-
                    discountEnroll(Course, Party).
                discountEnroll(Course, Party) <-
                    eligibleForDiscount(Party, Course).
                eligibleForDiscount(X, Course) <-
                    preferred(X) @ "ELENA", offersCourse(Course).
                % Hint rule: ask students to prove their own status (§4.1).
                student(X) @ University <- student(X) @ University @ X.
                offersCourse(spanish101).
                offersCourse(french201).
                "#,
            )
            .expect("E-Learn program parses");
        if ablation != Ablation1::NoElenaRule {
            // ELENA's signed rule, cached by E-Learn (§4.1).
            elearn
                .load_program(
                    r#"preferred(X) @ "ELENA" <- signedBy ["ELENA"] student(X) @ "UIUC"."#,
                )
                .expect("ELENA rule parses");
        }
        if ablation != Ablation1::NoBbbCredential {
            // BBB membership, with the "appropriate release policy (not
            // shown)" made explicit as public.
            elearn
                .load_program(r#"member("E-Learn") @ "BBB" $ true signedBy ["BBB"]."#)
                .expect("BBB credential parses");
        }
        peers.insert(elearn);

        // ---------------- Alice ----------------
        let mut alice = NegotiationPeer::new(ALICE, registry.clone());
        if ablation != Ablation1::NoStudentId {
            alice
                .load_program(r#"student("Alice") @ "UIUC Registrar" signedBy ["UIUC Registrar"]."#)
                .expect("student ID parses");
        }
        if ablation != Ablation1::NoDelegationRule {
            // Copy of UIUC's delegation to the registrar (§3.1).
            alice
                .load_program(
                    r#"student(X) @ "UIUC" <- signedBy ["UIUC"] student(X) @ "UIUC Registrar"."#,
                )
                .expect("delegation rule parses");
        }
        if ablation != Ablation1::NoReleasePolicy {
            // Alice's publicly releasable release policy (§4.1, verbatim).
            alice
                .load_program(
                    r#"student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-_true
                           student(X) @ Y."#,
                )
                .expect("release policy parses");
        }
        peers.insert(alice);

        // ---------------- UIUC & Registrar (present but, per §4.1, never
        // contacted at run time: "UIUC does not directly respond to queries
        // about student status"). ----------------
        let mut uiuc = NegotiationPeer::new("UIUC", registry.clone());
        uiuc.load_program(
            r#"student(X) $ Requester = "UIUC Registrar" <- student(X) @ "UIUC Registrar"."#,
        )
        .expect("UIUC program parses");
        uiuc.config.answerable = Some(std::collections::HashSet::new()); // answers nobody
        peers.insert(uiuc);
        peers.insert(NegotiationPeer::new("UIUC Registrar", registry.clone()));

        Scenario1 { peers, registry }
    }

    /// The standard resource request: Alice asks for discounted enrollment
    /// in the Spanish course.
    pub fn goal() -> Literal {
        Literal::new("discountEnroll", vec![Term::atom(COURSE), Term::str(ALICE)])
    }

    /// Run the negotiation under `strategy` with a fresh seeded network.
    pub fn run(&mut self, strategy: Strategy) -> NegotiationOutcome {
        self.run_traced(strategy, &peertrust_telemetry::Telemetry::disabled())
    }

    /// [`Scenario1::run`] with a telemetry pipeline attached to both the
    /// network and the negotiation driver.
    pub fn run_traced(
        &mut self,
        strategy: Strategy,
        telemetry: &peertrust_telemetry::Telemetry,
    ) -> NegotiationOutcome {
        let mut net = SimNetwork::new(0xE1).with_telemetry(telemetry.clone());
        strategy.run_traced(
            &mut self.peers,
            &mut net,
            NegotiationId(1),
            PeerId::new(ALICE),
            PeerId::new(ELEARN),
            Scenario1::goal(),
            telemetry,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_negotiation::verify_safe_sequence;

    #[test]
    fn full_scenario_succeeds_parsimonious() {
        let mut s = Scenario1::build();
        let out = s.run(Strategy::Parsimonious);
        assert!(out.success, "refusals: {:#?}", out.refusals);
        assert_eq!(
            out.granted[0].to_string(),
            r#"discountEnroll(spanish101, "Alice")"#
        );
        verify_safe_sequence(&out).unwrap();
        // Alice disclosed her chain (ID + delegation rule); E-Learn its BBB
        // membership.
        assert!(out.credential_count() >= 3, "{:#?}", out.disclosures);
    }

    #[test]
    fn full_scenario_succeeds_eager() {
        let mut s = Scenario1::build();
        let out = s.run(Strategy::Eager);
        assert!(out.success);
        verify_safe_sequence(&out).unwrap();
    }

    #[test]
    fn every_ablation_fails_under_both_strategies() {
        for ablation in Ablation1::ALL {
            if ablation == Ablation1::None {
                continue;
            }
            for strategy in Strategy::ALL {
                let mut s = Scenario1::build_ablated(ablation);
                let out = s.run(strategy);
                assert!(!out.success, "{ablation:?} under {strategy} should fail");
            }
        }
    }

    #[test]
    fn uiuc_is_never_contacted() {
        // §4.1: UIUC's release policies keep it out of the negotiation.
        let mut s = Scenario1::build();
        let out = s.run(Strategy::Parsimonious);
        assert!(out.success);
        assert!(out
            .disclosures
            .iter()
            .all(|d| d.from != PeerId::new("UIUC") && d.to != PeerId::new("UIUC")));
    }

    #[test]
    fn parsimonious_discloses_no_more_than_eager() {
        let mut p = Scenario1::build();
        let pars = p.run(Strategy::Parsimonious);
        let mut e = Scenario1::build();
        let eag = e.run(Strategy::Eager);
        assert!(pars.credential_count() <= eag.credential_count() + 1);
    }
}
