//! Scenario 2: Bob signs up for learning services (paper §4.2).
//!
//! Bob (IBM HR, purchase authority up to $2000) negotiates with E-Learn
//! for free and pay-per-use courses:
//!
//! * **free courses** — available to employees of ELENA member companies.
//!   E-Learn's `freebieEligible` definition is privileged business
//!   information (default-private rule context — UniPro);
//! * **pay-per-use** — needs the company's purchase authorization and the
//!   company VISA card; Bob discloses the card's existence only under
//!   `policy27` (VISA-authorized merchant AND ELENA member);
//! * the **revocation variant** adds `purchaseApproved @ "VISA"` — an
//!   external call to the card revocation authority — and the authority-
//!   database / broker variants instantiate that authority at run time.
//!
//! Credentials are written in the `lit @ issuer` normal form (§3.2 axiom;
//! see DESIGN.md), and release policies the paper asserts but does not
//! show (Bob's email, membership directory lookups) are made explicit.

use peertrust_core::{Literal, PeerId, Term};
use peertrust_crypto::{Credential, KeyRegistry, RevocationList};
use peertrust_negotiation::{NegotiationOutcome, NegotiationPeer, PeerMap, Strategy};
use peertrust_net::{NegotiationId, SimNetwork};

pub const BOB: &str = "Bob";
pub const ELEARN: &str = "E-Learn";
pub const IBM: &str = "IBM";
pub const VISA: &str = "VISA";

/// Variants of the §4.2 setup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant2 {
    /// The base policies: free + pay-per-use courses.
    Base,
    /// policy49 extended with the VISA revocation check
    /// (`purchaseApproved(Company, Price) @ "VISA"`).
    RevocationCheck,
    /// Like `RevocationCheck`, but the authority for `purchaseApproved` is
    /// looked up in E-Learn's local authority database at run time.
    AuthorityDb,
    /// Like `AuthorityDb`, but the lookup goes to a broker peer.
    Broker,
}

/// Ablations for the E2 study.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ablation2 {
    None,
    /// IBM is not an ELENA member (no membership credentials anywhere):
    /// free courses must fail, paid enrollment must still work.
    IbmNotElenaMember,
    /// The course price exceeds Bob's $2000 authority.
    PriceTooHigh,
    /// The company VISA card has been revoked.
    CardRevoked,
    /// E-Learn is not a VISA-authorized merchant: Bob's policy27 fails and
    /// the card is never disclosed.
    MerchantNotAuthorized,
}

/// The built scenario.
pub struct Scenario2 {
    pub peers: PeerMap,
    pub registry: KeyRegistry,
    pub revocations: RevocationList,
    pub variant: Variant2,
}

impl Scenario2 {
    pub fn build(variant: Variant2) -> Scenario2 {
        Scenario2::build_ablated(variant, Ablation2::None)
    }

    pub fn build_ablated(variant: Variant2, ablation: Ablation2) -> Scenario2 {
        let registry = KeyRegistry::new();
        for (i, issuer) in ["IBM", "VISA", "ELENA"].iter().enumerate() {
            registry.register_derived(PeerId::new(issuer), 200 + i as u64);
        }
        let revocations = RevocationList::new();
        let mut peers = PeerMap::new();

        // ---------------- Bob ----------------
        let mut bob = NegotiationPeer::new(BOB, registry.clone());
        bob.load_program(
            r#"
            email("Bob", "Bob@ibm.com") $ true.
            % Authorization & employment: disclosed to ELENA members only
            % (§4.2, verbatim modulo the @-issuer normal form).
            employee("Bob") @ X $ member(Requester) @ "ELENA" <-_true
                employee("Bob") @ X.
            employee("Bob") @ "IBM" signedBy ["IBM"].
            authorized("Bob", Price) @ X $ member(Requester) @ "ELENA" <-_true
                authorized("Bob", Price) @ X.
            authorized("Bob", Price) @ "IBM" <- signedBy ["IBM"] Price < 2000.
            % Hint rule: membership is proven by the requester itself.
            member(Requester) @ "ELENA" <-_true member(Requester) @ "ELENA" @ Requester.
            % The company card: existence discussed only under policy27.
            visaCard("IBM") @ "VISA" $ policy27(Requester) <-_true visaCard("IBM") @ "VISA".
            policy27(Requester) <-
                authorizedMerchant(Requester) @ "VISA" @ Requester,
                member(Requester) @ "ELENA".
            "#,
        )
        .expect("Bob's program parses");
        if ablation != Ablation2::CardRevoked {
            // The card itself (name field only, per the paper).
            bob.load_program(r#"visaCard("IBM") @ "VISA" signedBy ["VISA"]."#)
                .expect("card parses");
        } else {
            // Card exists but is on VISA's revocation list.
            bob.load_program(r#"visaCard("IBM") @ "VISA" signedBy ["VISA"]."#)
                .expect("card parses");
        }
        if ablation != Ablation2::IbmNotElenaMember {
            // "From previous interactions, Bob also knows that IBM and
            // E-Learn are members of the ELENA consortium."
            bob.load_program(
                r#"
                member("IBM") @ "ELENA" $ true signedBy ["ELENA"].
                member("E-Learn") @ "ELENA" $ true signedBy ["ELENA"].
                "#,
            )
            .expect("memberships parse");
        } else {
            bob.load_program(r#"member("E-Learn") @ "ELENA" $ true signedBy ["ELENA"]."#)
                .expect("membership parses");
        }
        peers.insert(bob);

        // ---------------- E-Learn ----------------
        let mut elearn = NegotiationPeer::new(ELEARN, registry.clone());
        let price = if ablation == Ablation2::PriceTooHigh {
            2500
        } else {
            1000
        };
        elearn
            .load_program(&format!(
                r#"
                enroll(Course, Requester, Company, Email, 0) $ true <-_true
                    freeCourse(Course),
                    freebieEligible(Course, Requester, Company, Email).
                enroll(Course, Requester, Company, Email, Price) $ true <-_true
                    policy49(Course, Requester, Company, Price).
                % Privileged: default-private rule context (UniPro).
                freebieEligible(Course, Requester, Company, EMail) <-
                    email(Requester, EMail) @ Requester,
                    employee(Requester) @ Company @ Requester,
                    member(Company) @ "ELENA" @ Requester.
                freeCourse(cs101).
                freeCourse(cs102).
                price(cs411, {price}).
                "#
            ))
            .expect("E-Learn base program parses");
        // policy49 in the requested variant.
        let policy49 = match variant {
            Variant2::Base => {
                r#"
                policy49(Course, Requester, Company, Price) <-_true
                    price(Course, Price),
                    authorized(Requester, Price) @ Company @ Requester,
                    visaCard(Company) @ "VISA" @ Requester.
                "#
            }
            Variant2::RevocationCheck => {
                r#"
                policy49(Course, Requester, Company, Price) <-_true
                    price(Course, Price),
                    authorized(Requester, Price) @ Company @ Requester,
                    visaCard(Company) @ "VISA" @ Requester,
                    purchaseApproved(Company, Price) @ "VISA".
                "#
            }
            Variant2::AuthorityDb => {
                r#"
                policy49(Course, Requester, Company, Price) <-_true
                    price(Course, Price),
                    authorized(Requester, Price) @ Company @ Requester,
                    visaCard(Company) @ "VISA" @ Requester,
                    authority(purchaseApproved, Authority),
                    purchaseApproved(Company, Price) @ Authority.
                authority(purchaseApproved, "VISA").
                "#
            }
            Variant2::Broker => {
                r#"
                policy49(Course, Requester, Company, Price) <-_true
                    price(Course, Price),
                    authorized(Requester, Price) @ Company @ Requester,
                    visaCard(Company) @ "VISA" @ Requester,
                    authority(purchaseApproved, Authority) @ "myBroker",
                    purchaseApproved(Company, Price) @ Authority.
                "#
            }
        };
        elearn.load_program(policy49).expect("policy49 parses");
        if ablation != Ablation2::MerchantNotAuthorized {
            elearn
                .load_program(r#"authorizedMerchant("E-Learn") @ "VISA" $ true signedBy ["VISA"]."#)
                .expect("merchant credential parses");
        }
        // Cached membership for the freebie path (and to answer Bob's
        // hint-rule query about E-Learn's own membership).
        elearn
            .load_program(
                r#"
                member("E-Learn") @ "ELENA" $ true signedBy ["ELENA"].
                "#,
            )
            .expect("membership parses");
        peers.insert(elearn);

        // ---------------- VISA (revocation/approval authority) ----------
        let mut visa = NegotiationPeer::new(VISA, registry.clone());
        if ablation != Ablation2::CardRevoked {
            // VISA approves the purchase: card valid, within limit.
            visa.load_program(
                r#"
                purchaseApproved(Company, Price) $ true <-
                    cardInGoodStanding(Company), Price < 10000.
                cardInGoodStanding("IBM").
                "#,
            )
            .expect("VISA program parses");
        } else {
            visa.load_program(
                r#"
                purchaseApproved(Company, Price) $ true <-
                    cardInGoodStanding(Company), Price < 10000.
                "#,
            )
            .expect("VISA program parses");
        }
        peers.insert(visa);

        // ---------------- Broker ----------------
        let mut broker = NegotiationPeer::new("myBroker", registry.clone());
        broker
            .load_program(r#"authority(purchaseApproved, "VISA") $ true."#)
            .expect("broker program parses");
        peers.insert(broker);

        // Mirror the CardRevoked ablation on the CRL substrate, so the
        // crypto-level check (used by the bench harness) agrees with the
        // policy-level one.
        if ablation == Ablation2::CardRevoked {
            revocations.revoke(PeerId::new(VISA), 1);
        }

        Scenario2 {
            peers,
            registry,
            revocations,
            variant,
        }
    }

    /// Goal: free enrollment in cs101.
    pub fn free_goal() -> Literal {
        Literal::new(
            "enroll",
            vec![
                Term::atom("cs101"),
                Term::str(BOB),
                Term::str(IBM),
                Term::var("Email"),
                Term::int(0),
            ],
        )
    }

    /// Goal: paid enrollment in cs411.
    pub fn paid_goal(price: i64) -> Literal {
        Literal::new(
            "enroll",
            vec![
                Term::atom("cs411"),
                Term::str(BOB),
                Term::str(IBM),
                Term::var("Email"),
                Term::int(price),
            ],
        )
    }

    /// Run a negotiation for `goal` under `strategy`.
    pub fn run(&mut self, strategy: Strategy, goal: Literal) -> NegotiationOutcome {
        self.run_traced(strategy, goal, &peertrust_telemetry::Telemetry::disabled())
    }

    /// [`Scenario2::run`] with a telemetry pipeline attached to both the
    /// network and the negotiation driver.
    pub fn run_traced(
        &mut self,
        strategy: Strategy,
        goal: Literal,
        telemetry: &peertrust_telemetry::Telemetry,
    ) -> NegotiationOutcome {
        let mut net = SimNetwork::new(0xE2).with_telemetry(telemetry.clone());
        strategy.run_traced(
            &mut self.peers,
            &mut net,
            NegotiationId(2),
            PeerId::new(BOB),
            PeerId::new(ELEARN),
            goal,
            telemetry,
        )
    }

    /// The VISA-side credential-lifecycle check used by the revocation
    /// experiment: validates the (simulated) card credential against the
    /// revocation list.
    pub fn card_check(
        &self,
        now: peertrust_crypto::Tick,
    ) -> Result<(), peertrust_crypto::CredentialError> {
        let bob = self.peers.get(PeerId::new(BOB)).expect("bob exists");
        let (_, signed) = bob
            .disclosable_signed_rules()
            .find(|(_, sr)| sr.rule.head.pred.as_str() == "visaCard")
            .expect("card credential exists");
        let cred = Credential::perpetual(1, signed.clone());
        self.revocations.check(&self.registry, &cred, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_negotiation::verify_safe_sequence;

    #[test]
    fn free_course_for_elena_member_employee() {
        let mut s = Scenario2::build(Variant2::Base);
        let out = s.run(Strategy::Parsimonious, Scenario2::free_goal());
        assert!(out.success, "refusals: {:#?}", out.refusals);
        verify_safe_sequence(&out).unwrap();
        // The grant binds Bob's email.
        assert!(out.granted[0].to_string().contains("Bob@ibm.com"));
    }

    #[test]
    fn paid_course_with_authorization_and_card() {
        let mut s = Scenario2::build(Variant2::Base);
        let out = s.run(Strategy::Parsimonious, Scenario2::paid_goal(1000));
        assert!(out.success, "refusals: {:#?}", out.refusals);
        verify_safe_sequence(&out).unwrap();
        // Bob's card and authorization crossed the wire.
        assert!(out.credential_count() >= 2);
    }

    #[test]
    fn non_member_gets_no_free_course_but_can_pay() {
        // "If IBM were not a member of ELENA, then IBM employees would not
        // be eligible for free courses, but Bob would be able to purchase
        // courses" — with one wrinkle: Bob's own release policies demand
        // the *requester* be an ELENA member, and E-Learn still is.
        let mut s = Scenario2::build_ablated(Variant2::Base, Ablation2::IbmNotElenaMember);
        let free = s.run(Strategy::Parsimonious, Scenario2::free_goal());
        assert!(!free.success, "free course must be denied");

        let mut s2 = Scenario2::build_ablated(Variant2::Base, Ablation2::IbmNotElenaMember);
        let paid = s2.run(Strategy::Parsimonious, Scenario2::paid_goal(1000));
        assert!(paid.success, "refusals: {:#?}", paid.refusals);
    }

    #[test]
    fn price_above_authority_fails() {
        let mut s = Scenario2::build_ablated(Variant2::Base, Ablation2::PriceTooHigh);
        let out = s.run(Strategy::Parsimonious, Scenario2::paid_goal(2500));
        assert!(!out.success, "authorization caps at $2000");
    }

    #[test]
    fn unauthorized_merchant_never_sees_the_card() {
        let mut s = Scenario2::build_ablated(Variant2::Base, Ablation2::MerchantNotAuthorized);
        let out = s.run(Strategy::Parsimonious, Scenario2::paid_goal(1000));
        assert!(!out.success);
        // The card credential must not appear in the disclosure sequence.
        assert!(out.disclosures.iter().all(|d| {
            !matches!(&d.item, peertrust_negotiation::DisclosedItem::SignedRule(sr)
                      if sr.rule.head.pred.as_str() == "visaCard")
        }));
    }

    #[test]
    fn revocation_check_blocks_purchase() {
        let mut s = Scenario2::build_ablated(Variant2::RevocationCheck, Ablation2::CardRevoked);
        let out = s.run(Strategy::Parsimonious, Scenario2::paid_goal(1000));
        assert!(!out.success, "revoked card must block the purchase");
        // The crypto-level CRL agrees.
        assert!(s.card_check(5).is_err());

        // And with a card in good standing the same variant succeeds.
        let mut ok = Scenario2::build(Variant2::RevocationCheck);
        let out_ok = ok.run(Strategy::Parsimonious, Scenario2::paid_goal(1000));
        assert!(out_ok.success, "refusals: {:#?}", out_ok.refusals);
        assert!(ok.card_check(5).is_ok());
    }

    #[test]
    fn authority_db_variant_routes_to_visa() {
        let mut s = Scenario2::build(Variant2::AuthorityDb);
        let out = s.run(Strategy::Parsimonious, Scenario2::paid_goal(1000));
        assert!(out.success, "refusals: {:#?}", out.refusals);
        // VISA participated.
        assert!(out.disclosures.iter().any(|d| d.from == PeerId::new(VISA)));
    }

    #[test]
    fn broker_variant_instantiates_authority_at_runtime() {
        let mut s = Scenario2::build(Variant2::Broker);
        let out = s.run(Strategy::Parsimonious, Scenario2::paid_goal(1000));
        assert!(out.success, "refusals: {:#?}", out.refusals);
        // The broker answered the authority lookup.
        assert!(out
            .disclosures
            .iter()
            .any(|d| d.from == PeerId::new("myBroker")));
    }
}
