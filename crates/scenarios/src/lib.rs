//! # peertrust-scenarios
//!
//! The paper's worked scenarios as executable negotiations, plus synthetic
//! workload generators for the quantitative experiments.

pub mod generator;
pub mod grid;
pub mod intensional;
pub mod scenario1;
pub mod scenario2;

pub use generator::{
    chain, delegation_chain, delegation_mesh, fleet, random_policies, resilience_grid,
    serving_workload, throughput_grid, BatchWorkload, MeshWorkload, RandomPolicyConfig,
    ResilienceGridPoint, ServingWorkload, Workload,
};
pub use grid::GridScenario;
pub use intensional::IntensionalScenario;
pub use scenario1::{Ablation1, Scenario1};
pub use scenario2::{Ablation2, Scenario2, Variant2};
