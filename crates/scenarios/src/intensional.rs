//! Intensional (content-triggered) access policies — paper §6:
//!
//! *"Semantic Web access control policies must support an intensional
//! specification of the resources and types of access affected by a
//! policy, e.g., as a query over the relevant resource attributes ('the
//! ability to print color documents on all printers on the third floor').
//! This capability ... is supported at run time by the content-triggered
//! variety of trust negotiation."*
//!
//! PeerTrust's rule bodies *are* queries over resource attributes, so
//! intensional policies fall out of the language: one rule covers the
//! whole attribute-defined family of resources, and which release policy
//! applies is *triggered by the content's attributes* rather than by the
//! resource's name. This module builds the paper's own example — a print
//! service where:
//!
//! * printing on any **third-floor color printer** requires a staff
//!   credential (one intensional rule covers every such printer, present
//!   and future);
//! * **monochrome or other-floor** printers are open;
//! * fetching a **classified document** requires a government clearance,
//!   while public documents flow freely — the same `fetch` interface, with
//!   the negotiation triggered (or not) by the document's classification.

use peertrust_core::{Literal, PeerId, Term};
use peertrust_crypto::KeyRegistry;
use peertrust_negotiation::{NegotiationOutcome, NegotiationPeer, PeerMap, Strategy};
use peertrust_net::{NegotiationId, SimNetwork};

pub const SERVICE: &str = "PrintService";
pub const STAFF: &str = "Staffer";
pub const GUEST: &str = "Guest";

/// The built scenario.
pub struct IntensionalScenario {
    pub peers: PeerMap,
    pub registry: KeyRegistry,
}

impl IntensionalScenario {
    pub fn build() -> IntensionalScenario {
        let registry = KeyRegistry::new();
        registry.register_derived(PeerId::new("Org"), 700);
        registry.register_derived(PeerId::new("Gov"), 701);
        let mut peers = PeerMap::new();

        let mut service = NegotiationPeer::new(SERVICE, registry.clone());
        service
            .load_program(
                r#"
                % Printer attribute database.
                printer(lobby1).   location(lobby1, floor1).  mono(lobby1).
                printer(eng3a).    location(eng3a, floor3).   color(eng3a).
                printer(eng3b).    location(eng3b, floor3).   color(eng3b).
                printer(eng3m).    location(eng3m, floor3).   mono(eng3m).

                % Intensional policy: ONE rule for "color printers on the
                % third floor" — guarded; everything else — open.
                print(P, X) $ true <-
                    printer(P), location(P, floor3), color(P),
                    staff(X) @ "Org" @ X.
                print(P, X) $ true <-
                    printer(P), mono(P).
                print(P, X) $ true <-
                    printer(P), location(P, floor1).

                % Content-triggered document fetch: classification decides
                % whether a negotiation is needed at all.
                document(budget2026).   classified(budget2026).
                document(newsletter).   public(newsletter).
                fetch(D, X) $ true <-
                    document(D), classified(D),
                    clearance(X) @ "Gov" @ X.
                fetch(D, X) $ true <-
                    document(D), public(D).
                "#,
            )
            .expect("service program parses");
        peers.insert(service);

        let mut staffer = NegotiationPeer::new(STAFF, registry.clone());
        staffer
            .load_program(
                r#"
                staff("Staffer") @ "Org" signedBy ["Org"].
                staff(X) @ Y $ true <-_true staff(X) @ Y.
                clearance("Staffer") @ "Gov" signedBy ["Gov"].
                clearance(X) @ Y $ true <-_true clearance(X) @ Y.
                "#,
            )
            .expect("staffer program parses");
        peers.insert(staffer);

        peers.insert(NegotiationPeer::new(GUEST, registry.clone()));

        IntensionalScenario { peers, registry }
    }

    pub fn run(&mut self, requester: &str, goal: Literal) -> NegotiationOutcome {
        let mut net = SimNetwork::new(0x1917);
        Strategy::Parsimonious.run(
            &mut self.peers,
            &mut net,
            NegotiationId(7),
            PeerId::new(requester),
            PeerId::new(SERVICE),
            goal,
        )
    }

    pub fn print_goal(printer: &str, who: &str) -> Literal {
        Literal::new("print", vec![Term::atom(printer), Term::str(who)])
    }

    pub fn fetch_goal(doc: &str, who: &str) -> Literal {
        Literal::new("fetch", vec![Term::atom(doc), Term::str(who)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn third_floor_color_requires_staff_credential() {
        let mut s = IntensionalScenario::build();
        let out = s.run(STAFF, IntensionalScenario::print_goal("eng3a", STAFF));
        assert!(out.success, "{:#?}", out.refusals);
        assert!(out.credential_count() >= 1, "staff credential disclosed");

        let mut s2 = IntensionalScenario::build();
        let denied = s2.run(GUEST, IntensionalScenario::print_goal("eng3a", GUEST));
        assert!(!denied.success, "guest lacks the staff credential");
    }

    #[test]
    fn monochrome_and_first_floor_are_open() {
        for printer in ["eng3m", "lobby1"] {
            let mut s = IntensionalScenario::build();
            let out = s.run(GUEST, IntensionalScenario::print_goal(printer, GUEST));
            assert!(out.success, "printer {printer}: {:#?}", out.refusals);
            assert_eq!(out.credential_count(), 0, "no negotiation for {printer}");
        }
    }

    #[test]
    fn one_intensional_rule_covers_new_printers() {
        // Adding a printer with the covered attributes extends the guarded
        // family without touching the policy.
        let mut s = IntensionalScenario::build();
        s.peers
            .get_mut(PeerId::new(SERVICE))
            .unwrap()
            .load_program("printer(eng3z). location(eng3z, floor3). color(eng3z).")
            .unwrap();
        let denied = s.run(GUEST, IntensionalScenario::print_goal("eng3z", GUEST));
        assert!(!denied.success);

        let mut s2 = IntensionalScenario::build();
        s2.peers
            .get_mut(PeerId::new(SERVICE))
            .unwrap()
            .load_program("printer(eng3z). location(eng3z, floor3). color(eng3z).")
            .unwrap();
        let ok = s2.run(STAFF, IntensionalScenario::print_goal("eng3z", STAFF));
        assert!(ok.success, "{:#?}", ok.refusals);
    }

    #[test]
    fn content_triggers_negotiation_only_for_classified_documents() {
        // Public document: no credentials requested or disclosed.
        let mut s = IntensionalScenario::build();
        let pub_out = s.run(GUEST, IntensionalScenario::fetch_goal("newsletter", GUEST));
        assert!(pub_out.success);
        assert_eq!(pub_out.credential_count(), 0);
        assert_eq!(pub_out.queries, 1, "only the top-level request");

        // Classified document: the clearance negotiation triggers.
        let mut s2 = IntensionalScenario::build();
        let cls_out = s2.run(STAFF, IntensionalScenario::fetch_goal("budget2026", STAFF));
        assert!(cls_out.success, "{:#?}", cls_out.refusals);
        assert!(cls_out.queries > 1, "content triggered a sub-negotiation");
        assert!(cls_out.credential_count() >= 1);

        // And fails for the uncleared guest.
        let mut s3 = IntensionalScenario::build();
        let denied = s3.run(GUEST, IntensionalScenario::fetch_goal("budget2026", GUEST));
        assert!(!denied.success);
    }

    #[test]
    fn enumerating_accessible_printers() {
        // A variable goal enumerates exactly the printers this requester
        // may use — the intensional family materialized per requester.
        let mut s = IntensionalScenario::build();
        let out = s.run(
            GUEST,
            Literal::new("print", vec![Term::var("P"), Term::str(GUEST)]),
        );
        assert!(out.success);
        let printers: Vec<String> = out.granted.iter().map(|g| g.args[0].to_string()).collect();
        // Guest: monochrome (eng3m, lobby1 via mono) + floor1 (lobby1,
        // deduped) — but NOT the color third-floor machines.
        assert!(printers.contains(&"eng3m".to_string()));
        assert!(printers.contains(&"lobby1".to_string()));
        assert!(!printers.contains(&"eng3a".to_string()));
        assert!(!printers.contains(&"eng3b".to_string()));
    }
}
