//! The delegated-negotiation (grid/handheld) scenario (paper §4.2, last
//! paragraph).
//!
//! "Handheld devices may not have enough power to carry out trust
//! negotiation directly. In this case, Bob's device can forward any
//! queries it receives to another peer that Bob trusts, such as his home
//! or office computer. This trusted peer has access to Bob's policies and
//! credentials, performs the negotiation on his behalf, and returns the
//! final results to the handheld device."
//!
//! Realization: the handheld peer ("Bob") holds *forwarding rules* whose
//! bodies route each query to "Bob-Home" (`cred(X) @ Y @ "Bob-Home"`) and
//! whose head contexts carry Bob's outward-facing release policies. The
//! home peer holds the actual credentials, released only to Bob's own
//! devices (`$ Requester = "Bob"`), so the private material never leaves
//! Bob's administrative domain unprotected — the run-time analogue of
//! "Bob's private keys reside only on his handheld".

use peertrust_core::{Literal, PeerId, Term};
use peertrust_crypto::KeyRegistry;
use peertrust_negotiation::{NegotiationOutcome, NegotiationPeer, PeerMap, Strategy};
use peertrust_net::{NegotiationId, SimNetwork};

pub const HANDHELD: &str = "Bob";
pub const HOME: &str = "Bob-Home";
pub const VERIFIER: &str = "GridService";

/// The built grid scenario.
pub struct GridScenario {
    pub peers: PeerMap,
    pub registry: KeyRegistry,
}

impl GridScenario {
    pub fn build() -> GridScenario {
        GridScenario::build_with(true)
    }

    /// `home_reachable = false` simulates the home peer being offline —
    /// the handheld alone cannot satisfy the service's policy.
    pub fn build_with(home_reachable: bool) -> GridScenario {
        let registry = KeyRegistry::new();
        registry.register_derived(PeerId::new("GridCA"), 300);
        let mut peers = PeerMap::new();

        // The grid service: requires a grid-user credential, presented by
        // the requester itself.
        let mut service = NegotiationPeer::new(VERIFIER, registry.clone());
        service
            .load_program(r#"access(X) $ true <- gridUser(X) @ "GridCA" @ X."#)
            .expect("service program parses");
        peers.insert(service);

        // The handheld: no credentials, only forwarding rules carrying
        // Bob's outward release policy (here: public, as the grid service
        // is trusted; any context could be used).
        let mut handheld = NegotiationPeer::new(HANDHELD, registry.clone());
        handheld
            .load_program(
                r#"
                gridUser(X) @ Y $ true <-_true gridUser(X) @ Y @ "Bob-Home".
                "#,
            )
            .expect("handheld program parses");
        peers.insert(handheld);

        // The home peer: holds the credential, releases it only to Bob's
        // own device.
        if home_reachable {
            let mut home = NegotiationPeer::new(HOME, registry.clone());
            home.load_program(
                r#"
                gridUser("Bob") @ "GridCA" signedBy ["GridCA"].
                gridUser(X) @ Y $ Requester = "Bob" <-_true gridUser(X) @ Y.
                "#,
            )
            .expect("home program parses");
            peers.insert(home);
        }

        GridScenario { peers, registry }
    }

    pub fn goal() -> Literal {
        Literal::new("access", vec![Term::str(HANDHELD)])
    }

    pub fn run(&mut self, strategy: Strategy) -> NegotiationOutcome {
        let mut net = SimNetwork::new(0xE9);
        strategy.run(
            &mut self.peers,
            &mut net,
            NegotiationId(9),
            PeerId::new(HANDHELD),
            PeerId::new(VERIFIER),
            GridScenario::goal(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peertrust_negotiation::verify_safe_sequence;

    #[test]
    fn delegated_negotiation_succeeds() {
        let mut s = GridScenario::build();
        let out = s.run(Strategy::Parsimonious);
        assert!(out.success, "refusals: {:#?}", out.refusals);
        verify_safe_sequence(&out).unwrap();
        // The home peer took part and the credential was relayed to the
        // service via the handheld.
        assert!(out
            .disclosures
            .iter()
            .any(|d| d.from == PeerId::new(HOME) && d.to == PeerId::new(HANDHELD)));
        assert!(out
            .disclosures
            .iter()
            .any(|d| d.from == PeerId::new(HANDHELD) && d.to == PeerId::new(VERIFIER)));
    }

    #[test]
    fn offline_home_peer_fails_negotiation() {
        let mut s = GridScenario::build_with(false);
        let out = s.run(Strategy::Parsimonious);
        assert!(!out.success);
    }

    #[test]
    fn home_releases_only_to_bobs_device() {
        // A stranger asking the home peer directly is refused.
        let mut s = GridScenario::build();
        let mut net = SimNetwork::new(1);
        let out = peertrust_negotiation::negotiate(
            &mut s.peers,
            &mut net,
            peertrust_negotiation::SessionConfig::default(),
            NegotiationId(10),
            PeerId::new(VERIFIER),
            PeerId::new(HOME),
            peertrust_parser::parse_literal(r#"gridUser("Bob") @ "GridCA""#).unwrap(),
        );
        assert!(!out.success, "home peer must refuse strangers");
    }
}
