//! Property tests for GEM distributed tabling (DESIGN.md §4h).
//!
//! 1. **Differential baseline** — on acyclic workloads the GEM flag is
//!    provably free: a run with `gem: true` is *bit-identical* to the
//!    classical path on every observable surface (serialized outcome,
//!    metrics registry JSON, timeline JSONL, final network clock). The
//!    GEM branch only fires when a query variant is already in flight,
//!    which never happens without a cross-peer loop.
//! 2. **Initiator independence** — on cyclic delegation meshes the GEM
//!    fixpoint converges to the same granted answer and the same success
//!    verdict no matter which ring member initiates the negotiation.
//! 3. **Fault tolerance** — the convergence survives a bounded fault
//!    lane (drops, duplicates, delays, reorders, corruption) when driven
//!    through the resilience layer: same outcome as the clean run.

use peertrust_core::PeerId;
use peertrust_negotiation::{
    negotiate, negotiate_resilient, negotiate_traced, NegotiationOutcome, PeerMap, RefusalReason,
    ResilienceConfig, SessionConfig,
};
use peertrust_net::{FaultPlan, LatencyModel, LinkFaults, NegotiationId, SimNetwork, Topology};
use peertrust_scenarios::{chain, delegation_mesh, random_policies, RandomPolicyConfig};
use peertrust_telemetry::{Telemetry, Timeline};
use proptest::prelude::*;

fn gem_config(gem: bool) -> SessionConfig {
    SessionConfig {
        gem,
        gem_max_rounds: 32,
        ..SessionConfig::default()
    }
}

fn network(seed: u64) -> SimNetwork {
    SimNetwork::with(
        Topology::FullMesh,
        LatencyModel::Uniform { min: 1, max: 4 },
        seed,
    )
}

/// One full run over an acyclic workload; returns every observable
/// surface as strings.
fn observe_acyclic(
    peers: &mut PeerMap,
    requester: PeerId,
    responder: PeerId,
    goal: peertrust_core::Literal,
    seed: u64,
    gem: bool,
) -> (String, String, String, u64) {
    let mut net = network(seed);
    let (tele, ring) = Telemetry::ring(8192);
    let outcome = negotiate_traced(
        peers,
        &mut net,
        gem_config(gem),
        NegotiationId(1),
        requester,
        responder,
        goal,
        &tele,
    );
    let metrics = tele
        .metrics()
        .expect("ring telemetry has metrics")
        .to_json();
    let jsonl: String = Timeline::from_events(&ring.events())
        .iter()
        .map(Timeline::to_jsonl)
        .collect();
    (
        serde_json::to_string(&outcome).unwrap(),
        metrics,
        jsonl,
        net.now(),
    )
}

fn run_mesh(
    n: usize,
    laps: usize,
    chords: bool,
    initiator: usize,
    gem: bool,
) -> NegotiationOutcome {
    let mut w = delegation_mesh(n, laps, chords);
    let mut net = network(7);
    let requester = w.peer_ids[initiator % w.peer_ids.len()];
    negotiate(
        &mut w.peers,
        &mut net,
        gem_config(gem),
        NegotiationId(1),
        requester,
        w.responder,
        w.goal.clone(),
    )
}

/// Faults bounded by the E15 convergence bar: drop ≤ 10% for the mesh
/// workloads (they move an order of magnitude more messages than the
/// bilateral scenario), plus proportionate duplication/delay/reorder.
fn arb_bounded_faults() -> impl Strategy<Value = LinkFaults> {
    (
        0u32..100_000,
        0u32..100_000,
        0u32..100_000,
        1u64..4,
        0u32..100_000,
    )
        .prop_map(
            |(drop_ppm, dup_ppm, delay_ppm, max_extra_delay, reorder_ppm)| LinkFaults {
                drop_ppm,
                dup_ppm,
                delay_ppm,
                max_extra_delay,
                reorder_ppm,
                corrupt_ppm: 0,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The GEM flag is bit-identical on acyclic chain workloads.
    #[test]
    fn gem_is_bit_identical_on_acyclic_chains(
        seed in any::<u64>(),
        depth in 1usize..6,
    ) {
        let mut off_peers = chain(depth);
        let mut on_peers = chain(depth);
        let off = observe_acyclic(
            &mut off_peers.peers,
            off_peers.requester,
            off_peers.responder,
            off_peers.goal.clone(),
            seed,
            false,
        );
        let on = observe_acyclic(
            &mut on_peers.peers,
            on_peers.requester,
            on_peers.responder,
            on_peers.goal.clone(),
            seed,
            true,
        );
        prop_assert_eq!(&off, &on, "gem flag changed an acyclic chain run");
    }

    /// ... and on random acyclic policy graphs.
    #[test]
    fn gem_is_bit_identical_on_random_acyclic_graphs(
        seed in any::<u64>(),
        graph_seed in 0u64..1000,
    ) {
        let cfg = RandomPolicyConfig {
            allow_cycles: false,
            seed: graph_seed,
            ..RandomPolicyConfig::default()
        };
        let mut off_w = random_policies(cfg);
        let mut on_w = random_policies(cfg);
        let off = observe_acyclic(
            &mut off_w.peers,
            off_w.requester,
            off_w.responder,
            off_w.goal.clone(),
            seed,
            false,
        );
        let on = observe_acyclic(
            &mut on_w.peers,
            on_w.requester,
            on_w.responder,
            on_w.goal.clone(),
            seed,
            true,
        );
        prop_assert_eq!(&off, &on, "gem flag changed an acyclic graph run");
    }

    /// Every ring member initiating the same cyclic-mesh negotiation
    /// reaches the same granted answer with zero cycle refusals, where
    /// the classical driver refuses.
    #[test]
    fn mesh_outcome_is_initiator_independent(
        n in 2usize..5,
        chords in any::<bool>(),
    ) {
        let baseline = run_mesh(n, 2, chords, 0, true);
        prop_assert!(baseline.success, "refusals: {:?}", baseline.refusals);
        prop_assert!(!baseline
            .refusals
            .iter()
            .any(|r| r.reason == RefusalReason::CycleDetected));
        for initiator in 1..n {
            let out = run_mesh(n, 2, chords, initiator, true);
            prop_assert_eq!(out.success, baseline.success, "initiator {}", initiator);
            prop_assert_eq!(&out.granted, &baseline.granted, "initiator {}", initiator);
            prop_assert!(!out
                .refusals
                .iter()
                .any(|r| r.reason == RefusalReason::CycleDetected));
        }
        // The classical driver refuses the same workload.
        let classical = run_mesh(n, 2, chords, 0, false);
        prop_assert!(!classical.success);
        prop_assert!(classical
            .refusals
            .iter()
            .any(|r| r.reason == RefusalReason::CycleDetected));
    }
}

proptest! {
    // Fault-lane convergence moves thousands of supervised messages per
    // case; a handful of cases keeps the suite under the CI budget.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The mesh fixpoint survives a bounded fault lane: the resilient
    /// driver converges to the clean GEM outcome.
    #[test]
    fn mesh_converges_under_bounded_faults(
        fault_seed in any::<u64>(),
        link in arb_bounded_faults(),
        initiator in 0usize..2,
    ) {
        let clean = run_mesh(2, 2, false, initiator, true);
        prop_assert!(clean.success);

        let mut w = delegation_mesh(2, 2, false);
        let mut net = network(7).with_faults(FaultPlan::uniform(fault_seed, link));
        let requester = w.peer_ids[initiator];
        let (out, report) = negotiate_resilient(
            &mut w.peers,
            &mut net,
            gem_config(true),
            ResilienceConfig {
                max_retries: 8,
                query_deadline_ticks: 256,
                ..ResilienceConfig::default()
            },
            NegotiationId(1),
            requester,
            w.responder,
            w.goal.clone(),
            &Telemetry::disabled(),
        );
        prop_assert!(report.converged, "failures: {:?}", report.failures);
        prop_assert_eq!(out.success, clean.success);
        prop_assert_eq!(&out.granted, &clean.granted);
    }
}
