//! Deterministic telemetry assertions for the two paper scenarios.
//!
//! The simulated network is seeded, so every counter in the metrics
//! registry is exact and stable run-to-run: these tests pin the expected
//! query/disclosure/round counts for scenario 1 (Alice & E-Learn, §4.1)
//! and scenario 2 (Bob & the paid course, §4.2), and check that the
//! event stream reconstructs into timelines that agree with the outcome.

use peertrust_negotiation::{DisclosedItem, Strategy};
use peertrust_scenarios::{Scenario1, Scenario2, Variant2};
use peertrust_telemetry::{Telemetry, Timeline};

#[test]
fn scenario1_metrics_are_exact() {
    let (t, _ring) = Telemetry::ring(65536);
    let mut s = Scenario1::build();
    let out = s.run_traced(Strategy::Parsimonious, &t);
    assert!(out.success, "refusals: {:#?}", out.refusals);

    let m = t.metrics().expect("telemetry enabled");

    // Query traffic: Alice asks E-Learn for the resource and (to check the
    // release context of her student ID) its BBB membership; E-Learn
    // queries Alice's student credential.
    assert_eq!(m.counter("negotiation.queries_issued.Alice"), 2);
    assert_eq!(m.counter("negotiation.queries_issued.E-Learn"), 1);
    assert_eq!(m.counter("negotiation.queries_received.Alice"), 1);
    assert_eq!(m.counter("negotiation.queries_received.E-Learn"), 2);
    assert_eq!(m.counter("negotiation.queries_answered.Alice"), 1);
    assert_eq!(m.counter("negotiation.queries_answered.E-Learn"), 2);

    // Disclosure sequence: 4 signed rules, 3 query answers, and the final
    // resource grant — 8 steps total.
    assert_eq!(m.counter("negotiation.disclosures"), 8);
    assert_eq!(m.counter("negotiation.disclosures.rule"), 4);
    assert_eq!(m.counter("negotiation.disclosures.answer"), 3);
    assert_eq!(m.counter("negotiation.disclosures.resource"), 1);

    // Outcome-level counters.
    assert_eq!(m.counter("negotiation.completed"), 1);
    assert_eq!(m.counter("negotiation.success"), 1);
    assert_eq!(m.counter("negotiation.failure"), 0);
    assert_eq!(m.histogram("negotiation.rounds").unwrap().max, 3);

    // Transport counters agree with the outcome's own accounting.
    assert_eq!(m.counter("net.messages"), out.messages);
    assert_eq!(m.counter("net.bytes"), out.bytes);
    assert_eq!(m.counter("net.payload.query"), out.queries);
    assert_eq!(m.counter("net.messages"), 9);

    // The registry's per-kind disclosure counters match the recorded
    // sequence item by item.
    let rules = out
        .disclosures
        .iter()
        .filter(|d| matches!(d.item, DisclosedItem::SignedRule(_)))
        .count() as u64;
    let answers = out
        .disclosures
        .iter()
        .filter(|d| matches!(d.item, DisclosedItem::Answer(_)))
        .count() as u64;
    assert_eq!(m.counter("negotiation.disclosures.rule"), rules);
    assert_eq!(m.counter("negotiation.disclosures.answer"), answers);
    assert_eq!(
        m.counter("negotiation.disclosures"),
        out.disclosures.len() as u64
    );

    // Engine-level effort counters are populated.
    assert_eq!(m.counter("engine.steps"), 11);
    assert_eq!(m.counter("engine.remote_hops"), 2);
    assert!(m.counter("engine.rule_tries") >= m.counter("engine.steps"));
    assert_eq!(m.histogram("engine.proof_depth").unwrap().max, 5);
}

#[test]
fn scenario1_timeline_covers_the_negotiation() {
    let (t, ring) = Telemetry::ring(65536);
    let mut s = Scenario1::build();
    let out = s.run_traced(Strategy::Parsimonious, &t);
    assert!(out.success);

    let events = ring.events();
    assert!(!events.is_empty());
    assert_eq!(ring.dropped(), 0, "ring must not have evicted events");

    let timelines = Timeline::from_events(&events);
    // Negotiation 1 plus the engine's layer-internal group (id 0).
    let tl = timelines
        .iter()
        .find(|tl| tl.negotiation == 1)
        .expect("timeline for negotiation 1");

    // At least one span — the `negotiation` span — and it is closed and
    // covers the whole simulated run.
    let span = tl.span_named("negotiation").expect("negotiation span");
    assert!(span.end_seq > span.start_seq, "span closed");
    assert_eq!(span.duration(), out.elapsed_ticks);

    // Event counts match the metrics/outcome exactly.
    assert_eq!(tl.events_of_kind("negotiation.query").len(), 3);
    assert_eq!(
        tl.events_of_kind("negotiation.disclosure").len(),
        out.disclosures.len()
    );
    assert_eq!(tl.events_of_kind("net.send").len(), out.messages as usize);
    assert_eq!(tl.events_of_kind("negotiation.refusal").len(), 0);

    // The chronological order is coherent: the resource grant is the final
    // disclosure event, as in the paper's sequence `(C1, ..., Ck, R)`.
    let disclosures = tl.events_of_kind("negotiation.disclosure");
    assert_eq!(
        disclosures.last().unwrap().str_field("kind"),
        Some("resource")
    );

    // JSONL round-trip through serde_json preserves the timelines.
    let dump: String = timelines.iter().map(Timeline::to_jsonl).collect();
    for line in dump.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
        assert!(v["kind"].as_str().is_some());
    }
    let back = Timeline::from_jsonl(&dump).expect("parses");
    assert_eq!(back, timelines);
}

#[test]
fn scenario2_metrics_are_exact() {
    let (t, _ring) = Telemetry::ring(65536);
    let mut s = Scenario2::build(Variant2::Base);
    let out = s.run_traced(Strategy::Parsimonious, Scenario2::paid_goal(1000), &t);
    assert!(out.success, "refusals: {:#?}", out.refusals);

    let m = t.metrics().expect("telemetry enabled");

    // Bob asks for the course, then (for his card's release policy)
    // E-Learn's credentials; E-Learn queries Bob's authorization and card.
    assert_eq!(m.counter("negotiation.queries_issued.Bob"), 3);
    assert_eq!(m.counter("negotiation.queries_issued.E-Learn"), 2);
    assert_eq!(m.counter("negotiation.queries_received.Bob"), 2);
    assert_eq!(m.counter("negotiation.queries_received.E-Learn"), 3);
    assert_eq!(m.counter("negotiation.queries_answered.Bob"), 2);
    assert_eq!(m.counter("negotiation.queries_answered.E-Learn"), 3);

    // Disclosures: 4 signed rules, 5 answers, 1 resource grant.
    assert_eq!(m.counter("negotiation.disclosures"), 10);
    assert_eq!(m.counter("negotiation.disclosures.rule"), 4);
    assert_eq!(m.counter("negotiation.disclosures.answer"), 5);
    assert_eq!(m.counter("negotiation.disclosures.resource"), 1);
    assert_eq!(
        m.counter("negotiation.disclosures"),
        out.disclosures.len() as u64
    );

    assert_eq!(m.counter("negotiation.success"), 1);
    assert_eq!(m.histogram("negotiation.rounds").unwrap().max, 3);
    assert_eq!(m.counter("net.messages"), out.messages);
    assert_eq!(m.counter("net.messages"), 14);
    assert_eq!(m.counter("net.payload.query"), out.queries);
    assert_eq!(m.counter("engine.steps"), 16);
    assert_eq!(m.counter("engine.remote_hops"), 4);
}

#[test]
fn disabled_telemetry_changes_nothing() {
    // The traced run with a disabled handle must equal the plain run.
    let mut a = Scenario1::build();
    let plain = a.run(Strategy::Parsimonious);
    let mut b = Scenario1::build();
    let traced = b.run_traced(Strategy::Parsimonious, &Telemetry::disabled());
    assert_eq!(plain.success, traced.success);
    assert_eq!(plain.messages, traced.messages);
    assert_eq!(plain.bytes, traced.bytes);
    assert_eq!(plain.disclosures.len(), traced.disclosures.len());
    assert_eq!(plain.elapsed_ticks, traced.elapsed_ticks);
}

#[test]
fn eager_strategy_is_traced_at_outcome_level() {
    let (t, ring) = Telemetry::ring(65536);
    let mut s = Scenario1::build();
    let out = s.run_traced(Strategy::Eager, &t);
    assert!(out.success);

    let m = t.metrics().expect("telemetry enabled");
    assert_eq!(m.counter("negotiation.completed"), 1);
    assert_eq!(m.counter("negotiation.success"), 1);
    // Eager pushes credentials without counter-querying.
    assert_eq!(m.counter("net.payload.query"), 0);
    assert!(m.counter("net.messages") > 0);

    let timelines = Timeline::from_events(&ring.events());
    let tl = timelines
        .iter()
        .find(|tl| tl.negotiation == 1)
        .expect("timeline for negotiation 1");
    let span = tl.span_named("negotiation").expect("negotiation span");
    assert!(span.end_seq > span.start_seq);
    assert_eq!(
        tl.events
            .iter()
            .find(|e| e.kind == "span.start")
            .and_then(|e| e.str_field("strategy")),
        Some("eager")
    );
}
