//! Caching-layer integration tests: the per-session remote-answer cache
//! dedups repeated queries inside one negotiation, the cross-negotiation
//! cache cuts the message count of warm repeats, and scenario 1's warm
//! rerun provably touches the network less than its cold run.

use peertrust_core::{Literal, PeerId, Term};
use peertrust_crypto::KeyRegistry;
use peertrust_negotiation::{
    negotiate, negotiate_cached, negotiate_traced, NegotiationPeer, PeerMap, RemoteAnswerCache,
    SessionConfig, Strategy,
};
use peertrust_net::{NegotiationId, SimNetwork};
use peertrust_scenarios::{delegation_chain, Scenario1};
use peertrust_telemetry::{Telemetry, Timeline};

fn net_sends(events: &[peertrust_telemetry::TraceEvent]) -> usize {
    let timelines = Timeline::from_events(events);
    timelines
        .iter()
        .find(|tl| tl.negotiation == 1)
        .map(|tl| tl.events_of_kind("net.send").len())
        .unwrap_or(0)
}

#[test]
fn scenario1_warm_rerun_sends_strictly_fewer_messages() {
    let mut s = Scenario1::build();

    let (t_cold, ring_cold) = Telemetry::ring(65536);
    let cold = s.run_traced(Strategy::Parsimonious, &t_cold);
    assert!(cold.success, "cold run: {:#?}", cold.refusals);

    let (t_warm, ring_warm) = Telemetry::ring(65536);
    let warm = s.run_traced(Strategy::Parsimonious, &t_warm);
    assert!(warm.success, "warm run: {:#?}", warm.refusals);

    let cold_sends = net_sends(&ring_cold.events());
    let warm_sends = net_sends(&ring_warm.events());
    assert_eq!(cold_sends as u64, cold.messages);
    assert_eq!(warm_sends as u64, warm.messages);
    assert!(
        warm_sends < cold_sends,
        "warm rerun must send strictly fewer messages ({warm_sends} vs {cold_sends})"
    );
}

/// Server policy with the same delegated subgoal under two different
/// rules: without the session cache the `cred` query crosses the wire
/// twice; with it, once.
fn repeated_subgoal_setup() -> PeerMap {
    let registry = KeyRegistry::new();
    registry.register_derived(PeerId::new("CA"), 7);

    let mut server = NegotiationPeer::new("Server", registry.clone());
    server
        .load_program(
            r#"
            resource(X) $ true <- sub1(X), sub2(X).
            sub1(X) <- cred(X) @ "CA" @ X.
            sub2(X) <- cred(X) @ "CA" @ X.
            "#,
        )
        .expect("server program parses");

    let mut client = NegotiationPeer::new("Client", registry.clone());
    client
        .load_program(
            r#"
            cred("Client") @ "CA" signedBy ["CA"].
            cred(X) @ Y $ true <-_true cred(X) @ Y.
            "#,
        )
        .expect("client program parses");

    let mut peers = PeerMap::new();
    peers.insert(client);
    peers.insert(server);
    peers
}

fn run_repeated_subgoals(cache_remote_answers: bool) -> (u64, u64) {
    let (telemetry, _ring) = Telemetry::ring(65536);
    let mut peers = repeated_subgoal_setup();
    let mut net = SimNetwork::new(7).with_telemetry(telemetry.clone());
    let out = negotiate_traced(
        &mut peers,
        &mut net,
        SessionConfig {
            cache_remote_answers,
            ..SessionConfig::default()
        },
        NegotiationId(1),
        PeerId::new("Client"),
        PeerId::new("Server"),
        Literal::new("resource", vec![Term::str("Client")]),
        &telemetry,
    );
    assert!(out.success, "refusals: {:#?}", out.refusals);
    let m = telemetry.metrics().expect("telemetry enabled");
    (
        m.counter("negotiation.queries_issued.Server"),
        m.counter("negotiation.cache.session_hits"),
    )
}

#[test]
fn session_cache_dedups_repeated_queries_in_one_negotiation() {
    let (uncached_queries, uncached_hits) = run_repeated_subgoals(false);
    let (cached_queries, cached_hits) = run_repeated_subgoals(true);

    assert_eq!(uncached_hits, 0);
    assert_eq!(
        uncached_queries, 2,
        "both sub-rules must query the client without the cache"
    );
    assert_eq!(
        cached_queries, 1,
        "the repeated subgoal must be answered from the session cache"
    );
    assert!(cached_hits >= 1, "session-cache hit counter must move");
}

#[test]
fn cross_negotiation_cache_cuts_warm_repeat_messages() {
    let depth = 4;
    let telemetry = Telemetry::disabled();

    // Baseline: warm repeat on the same peers, no cross cache.
    let mut base = delegation_chain(depth);
    let mut net = SimNetwork::new(1);
    let cold = negotiate(
        &mut base.peers,
        &mut net,
        SessionConfig::default(),
        NegotiationId(1),
        base.requester,
        base.responder,
        base.goal.clone(),
    );
    assert!(cold.success);
    let mut net = SimNetwork::new(2);
    let warm_uncached = negotiate(
        &mut base.peers,
        &mut net,
        SessionConfig::default(),
        NegotiationId(2),
        base.requester,
        base.responder,
        base.goal.clone(),
    );
    assert!(warm_uncached.success);

    // Same repeat through a shared remote-answer cache.
    let mut w = delegation_chain(depth);
    let mut cache = RemoteAnswerCache::new();
    let mut net = SimNetwork::new(1);
    let cold_cached = negotiate_cached(
        &mut w.peers,
        &mut net,
        SessionConfig::default(),
        NegotiationId(1),
        w.requester,
        w.responder,
        w.goal.clone(),
        &mut cache,
        &telemetry,
    );
    assert!(cold_cached.success);
    assert!(cache.stats().inserts >= 1, "public answers must be cached");

    let mut net = SimNetwork::new(2);
    let warm_cached = negotiate_cached(
        &mut w.peers,
        &mut net,
        SessionConfig::default(),
        NegotiationId(2),
        w.requester,
        w.responder,
        w.goal.clone(),
        &mut cache,
        &telemetry,
    );
    assert!(warm_cached.success);
    assert!(cache.stats().hits >= 1, "warm repeat must hit the cache");
    assert!(
        warm_cached.messages < warm_uncached.messages,
        "cross cache must cut warm-repeat traffic ({} vs {})",
        warm_cached.messages,
        warm_uncached.messages
    );
}
