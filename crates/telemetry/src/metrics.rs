//! The metrics registry: named counters and histograms.
//!
//! Names are dotted paths; per-peer series append the peer name as the
//! last segment (`negotiation.queries_issued.Alice`). The registry is a
//! pair of locked `BTreeMap`s — sorted iteration makes every snapshot and
//! JSON export deterministic, which the experiment tables rely on.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Running aggregate of one histogram series.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another aggregate into this one, as if every observation
    /// behind `other` had been observed here.
    pub fn absorb(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A point-in-time copy of the whole registry, serializable to JSON.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// The thread-safe registry.
#[derive(Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, HistogramSnapshot>>,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Add `by` to counter `name`, creating it at 0.
    pub fn incr(&self, name: &str, by: u64) {
        let mut counters = self.counters.lock();
        match counters.get_mut(name) {
            Some(v) => *v += by,
            None => {
                counters.insert(name.to_string(), by);
            }
        }
    }

    /// Record one observation into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        let mut histograms = self.histograms.lock();
        match histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                histograms.insert(
                    name.to_string(),
                    HistogramSnapshot {
                        count: 1,
                        sum: value,
                        min: value,
                        max: value,
                    },
                );
            }
        }
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// Current aggregate of histogram `name`, if any value was observed.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.histograms.lock().get(name).copied()
    }

    /// Record a pre-aggregated histogram series under `name`, merging
    /// with whatever has been observed locally.
    pub fn observe_aggregate(&self, name: &str, agg: &HistogramSnapshot) {
        if agg.count == 0 {
            return;
        }
        let mut histograms = self.histograms.lock();
        match histograms.get_mut(name) {
            Some(h) => h.absorb(agg),
            None => {
                histograms.insert(name.to_string(), *agg);
            }
        }
    }

    /// Fold a whole snapshot into this registry: counters add, histogram
    /// aggregates absorb. This is how per-worker registries from a batch
    /// run merge into the caller's registry at join — merging snapshots
    /// from k workers is equivalent (up to observation order, which the
    /// aggregates don't record) to all workers sharing one registry,
    /// without the cross-thread lock traffic while they run.
    pub fn merge(&self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            self.incr(name, *value);
        }
        for (name, agg) in &other.histograms {
            self.observe_aggregate(name, agg);
        }
    }

    /// Copy out the whole registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.lock().clone(),
            histograms: self.histograms.lock().clone(),
        }
    }

    /// Serialize the registry as pretty JSON (the `metrics.json` format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).expect("snapshot serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        assert_eq!(m.counter("a"), 0);
        m.incr("a", 1);
        m.incr("a", 2);
        m.incr("b", 5);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.counter("b"), 5);
    }

    #[test]
    fn histograms_track_aggregates() {
        let m = Metrics::new();
        assert!(m.histogram("h").is_none());
        for v in [4, 2, 9] {
            m.observe("h", v);
        }
        let h = m.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 15);
        assert_eq!(h.min, 2);
        assert_eq!(h.max, 9);
        assert!((h.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let m = Metrics::new();
        m.incr("negotiation.queries_issued.Alice", 4);
        m.observe("engine.proof_depth", 3);
        let json = m.to_json();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m.snapshot());
        assert_eq!(back.counters["negotiation.queries_issued.Alice"], 4);
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let m = Metrics::new();
        m.incr("zebra", 1);
        m.incr("alpha", 1);
        let snap = m.snapshot();
        let names: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(names, ["alpha", "zebra"]);
    }

    #[test]
    fn merge_equals_shared_registry() {
        // Two per-worker registries merged into a third equal one
        // registry that saw every event directly.
        let direct = Metrics::new();
        let w1 = Metrics::new();
        let w2 = Metrics::new();
        for (m, k) in [(&w1, 1u64), (&w2, 2u64)] {
            m.incr("sessions", k);
            m.incr("shared.counter", 10 * k);
            for v in [k, 7 * k] {
                m.observe("latency", v);
            }
            direct.incr("sessions", k);
            direct.incr("shared.counter", 10 * k);
            for v in [k, 7 * k] {
                direct.observe("latency", v);
            }
        }
        let merged = Metrics::new();
        merged.merge(&w1.snapshot());
        merged.merge(&w2.snapshot());
        assert_eq!(merged.snapshot(), direct.snapshot());
    }

    #[test]
    fn absorb_handles_empty_and_disjoint_ranges() {
        let mut a = HistogramSnapshot {
            count: 2,
            sum: 10,
            min: 3,
            max: 7,
        };
        a.absorb(&HistogramSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        });
        assert_eq!(a.count, 2);
        a.absorb(&HistogramSnapshot {
            count: 1,
            sum: 100,
            min: 100,
            max: 100,
        });
        assert_eq!((a.count, a.sum, a.min, a.max), (3, 110, 3, 100));
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let m = std::sync::Arc::new(Metrics::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.incr("shared", 1);
                        m.observe("obs", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.counter("shared"), 4000);
        assert_eq!(m.histogram("obs").unwrap().count, 4000);
    }
}
