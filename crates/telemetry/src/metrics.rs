//! The metrics registry: named counters and histograms.
//!
//! Names are dotted paths; per-peer series append the peer name as the
//! last segment (`negotiation.queries_issued.Alice`). The registry is a
//! pair of locked `BTreeMap`s — sorted iteration makes every snapshot and
//! JSON export deterministic, which the experiment tables rely on.
//!
//! Each histogram carries a fixed-memory log-bucketed quantile sketch
//! alongside its count/sum/min/max aggregate, so `metrics.json` reports
//! p50/p90/p99/p999 without retaining individual observations. The sketch
//! merges bucket-wise and exactly, which keeps the worker-merge invariant:
//! merging per-worker snapshots yields the same quantiles as one shared
//! registry, regardless of observation order or worker count.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Values below `2^LINEAR_BITS` get one bucket each (exact); above, each
/// power-of-two octave is split into `2^SUB_BITS` sub-buckets, bounding
/// the relative quantile error at `2^-SUB_BITS` (≈6%) with at most
/// `32 + 59 * 16 = 976` addressable buckets, stored sparsely.
const LINEAR_BITS: u32 = 5;
const SUB_BITS: u32 = 4;

/// Sketch bucket index for a value (monotone in the value).
fn bucket_index(value: u64) -> u16 {
    if value < (1 << LINEAR_BITS) {
        return value as u16;
    }
    let exp = 63 - value.leading_zeros(); // >= LINEAR_BITS
    let sub = ((value >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as u16;
    (1 << LINEAR_BITS) + ((exp - LINEAR_BITS) as u16) * (1 << SUB_BITS) + sub
}

/// Smallest value mapping to bucket `index` (the sketch's representative;
/// quantiles are reported as this lower bound, clamped to [min, max]).
fn bucket_lower_bound(index: u16) -> u64 {
    if index < (1 << LINEAR_BITS) {
        return index as u64;
    }
    let rest = (index - (1 << LINEAR_BITS)) as u32;
    let exp = rest / (1 << SUB_BITS) + LINEAR_BITS;
    let sub = (rest % (1 << SUB_BITS)) as u64;
    (1u64 << exp) + (sub << (exp - SUB_BITS))
}

/// Running aggregate of one histogram series, including the quantile
/// sketch. `buckets` holds `(bucket index, count)` pairs sorted by index;
/// the `p*` fields are derived from the sketch whenever it changes, so a
/// JSON snapshot round-trips to an equal value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Sparse log-bucketed sketch: `(bucket_index, count)`, sorted.
    /// Absent in pre-sketch snapshots (deserializes empty).
    pub buckets: Vec<(u16, u64)>,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
}

// Hand-written serde impls (the vendored derive has no field attributes):
// `buckets` is omitted when empty and every sketch field is optional on
// input, so snapshots written before the sketch existed still parse.
impl serde::Serialize for HistogramSnapshot {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let key = |k: &str| serde::Content::Str(k.to_string());
        let mut map = vec![
            (key("count"), serde::Content::U64(self.count)),
            (key("sum"), serde::Content::U64(self.sum)),
            (key("min"), serde::Content::U64(self.min)),
            (key("max"), serde::Content::U64(self.max)),
        ];
        if !self.buckets.is_empty() {
            let b = serde::to_content(&self.buckets)
                .map_err(<S::Error as serde::ser::Error>::custom)?;
            map.push((key("buckets"), b));
        }
        map.push((key("p50"), serde::Content::U64(self.p50)));
        map.push((key("p90"), serde::Content::U64(self.p90)));
        map.push((key("p99"), serde::Content::U64(self.p99)));
        map.push((key("p999"), serde::Content::U64(self.p999)));
        serializer.serialize_content(serde::Content::Map(map))
    }
}

impl<'de> serde::Deserialize<'de> for HistogramSnapshot {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let err = <D::Error as serde::de::Error>::custom;
        let content = deserializer.deserialize_content()?;
        let mut fields = serde::de::expect_map(content).map_err(err)?;
        let mut take = |k: &str| serde::de::take_field::<u64>(&mut fields, k);
        let (count, sum) = (take("count").map_err(err)?, take("sum").map_err(err)?);
        let (min, max) = (take("min").map_err(err)?, take("max").map_err(err)?);
        let buckets = serde::de::take_field::<Option<Vec<(u16, u64)>>>(&mut fields, "buckets")
            .map_err(err)?
            .unwrap_or_default();
        let mut take_opt = |k: &str| {
            serde::de::take_field::<Option<u64>>(&mut fields, k).map(Option::unwrap_or_default)
        };
        Ok(HistogramSnapshot {
            count,
            sum,
            min,
            max,
            buckets,
            p50: take_opt("p50").map_err(err)?,
            p90: take_opt("p90").map_err(err)?,
            p99: take_opt("p99").map_err(err)?,
            p999: take_opt("p999").map_err(err)?,
        })
    }
}

impl HistogramSnapshot {
    /// An empty aggregate, ready to absorb observations.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Vec::new(),
            p50: 0,
            p90: 0,
            p99: 0,
            p999: 0,
        }
    }

    /// Fold one observation into the aggregate (exact count/sum/min/max,
    /// log-bucketed sketch for the quantiles).
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let idx = bucket_index(value);
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (idx, 1)),
        }
        self.refresh_quantiles();
    }

    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the sketch: the
    /// lower bound of the bucket holding the rank-`ceil(q·n)` value,
    /// clamped to the observed [min, max]. Falls back to `max` when the
    /// sketch is empty but the aggregate is not (pre-sketch data absorbed
    /// from an old snapshot).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let sketched: u64 = self.buckets.iter().map(|&(_, c)| c).sum();
        if sketched == 0 {
            return self.max;
        }
        let rank = ((q * sketched as f64).ceil() as u64).clamp(1, sketched);
        if rank == sketched {
            // The largest observation is tracked exactly.
            return self.max;
        }
        let mut seen = 0u64;
        for &(idx, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bucket_lower_bound(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    fn refresh_quantiles(&mut self) {
        self.p50 = self.quantile(0.50);
        self.p90 = self.quantile(0.90);
        self.p99 = self.quantile(0.99);
        self.p999 = self.quantile(0.999);
    }

    /// Fold another aggregate into this one, as if every observation
    /// behind `other` had been observed here. Sketch buckets add
    /// bucket-wise, so the merge is exact and order-independent.
    pub fn absorb(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for &(idx, c) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += c,
                Err(pos) => self.buckets.insert(pos, (idx, c)),
            }
        }
        self.refresh_quantiles();
    }
}

/// A point-in-time copy of the whole registry, serializable to JSON.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// The thread-safe registry.
#[derive(Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, HistogramSnapshot>>,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Add `by` to counter `name`, creating it at 0.
    pub fn incr(&self, name: &str, by: u64) {
        let mut counters = self.counters.lock();
        match counters.get_mut(name) {
            Some(v) => *v += by,
            None => {
                counters.insert(name.to_string(), by);
            }
        }
    }

    /// Record one observation into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        let mut histograms = self.histograms.lock();
        match histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = HistogramSnapshot::empty();
                h.observe(value);
                histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// Current aggregate of histogram `name`, if any value was observed.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.histograms.lock().get(name).cloned()
    }

    /// Record a pre-aggregated histogram series under `name`, merging
    /// with whatever has been observed locally.
    pub fn observe_aggregate(&self, name: &str, agg: &HistogramSnapshot) {
        if agg.count == 0 {
            return;
        }
        let mut histograms = self.histograms.lock();
        match histograms.get_mut(name) {
            Some(h) => h.absorb(agg),
            None => {
                histograms.insert(name.to_string(), agg.clone());
            }
        }
    }

    /// Fold a whole snapshot into this registry: counters add, histogram
    /// aggregates absorb. This is how per-worker registries from a batch
    /// run merge into the caller's registry at join — merging snapshots
    /// from k workers is equivalent (up to observation order, which the
    /// aggregates don't record) to all workers sharing one registry,
    /// without the cross-thread lock traffic while they run.
    pub fn merge(&self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            self.incr(name, *value);
        }
        for (name, agg) in &other.histograms {
            self.observe_aggregate(name, agg);
        }
    }

    /// Copy out the whole registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.lock().clone(),
            histograms: self.histograms.lock().clone(),
        }
    }

    /// Serialize the registry as pretty JSON (the `metrics.json` format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).expect("snapshot serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        assert_eq!(m.counter("a"), 0);
        m.incr("a", 1);
        m.incr("a", 2);
        m.incr("b", 5);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.counter("b"), 5);
    }

    #[test]
    fn histograms_track_aggregates() {
        let m = Metrics::new();
        assert!(m.histogram("h").is_none());
        for v in [4, 2, 9] {
            m.observe("h", v);
        }
        let h = m.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 15);
        assert_eq!(h.min, 2);
        assert_eq!(h.max, 9);
        assert!((h.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let m = Metrics::new();
        m.incr("negotiation.queries_issued.Alice", 4);
        m.observe("engine.proof_depth", 3);
        let json = m.to_json();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m.snapshot());
        assert_eq!(back.counters["negotiation.queries_issued.Alice"], 4);
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let m = Metrics::new();
        m.incr("zebra", 1);
        m.incr("alpha", 1);
        let snap = m.snapshot();
        let names: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(names, ["alpha", "zebra"]);
    }

    #[test]
    fn merge_equals_shared_registry() {
        // Two per-worker registries merged into a third equal one
        // registry that saw every event directly.
        let direct = Metrics::new();
        let w1 = Metrics::new();
        let w2 = Metrics::new();
        for (m, k) in [(&w1, 1u64), (&w2, 2u64)] {
            m.incr("sessions", k);
            m.incr("shared.counter", 10 * k);
            for v in [k, 7 * k] {
                m.observe("latency", v);
            }
            direct.incr("sessions", k);
            direct.incr("shared.counter", 10 * k);
            for v in [k, 7 * k] {
                direct.observe("latency", v);
            }
        }
        let merged = Metrics::new();
        merged.merge(&w1.snapshot());
        merged.merge(&w2.snapshot());
        assert_eq!(merged.snapshot(), direct.snapshot());
    }

    #[test]
    fn absorb_handles_empty_and_disjoint_ranges() {
        let mut a = HistogramSnapshot::empty();
        a.observe(3);
        a.observe(7);
        a.absorb(&HistogramSnapshot::empty());
        assert_eq!(a.count, 2);
        let mut b = HistogramSnapshot::empty();
        b.observe(100);
        a.absorb(&b);
        assert_eq!((a.count, a.sum, a.min, a.max), (3, 110, 3, 100));
    }

    #[test]
    fn bucket_index_is_monotone_and_invertible_enough() {
        let mut last = None;
        for v in (0..4096u64).chain([1 << 20, (1 << 20) + 12345, u64::MAX]) {
            let idx = bucket_index(v);
            if let Some((pv, pi)) = last {
                assert!(idx >= pi, "index must be monotone: {pv} -> {v}");
            }
            let lb = bucket_lower_bound(idx);
            assert!(lb <= v, "lower bound {lb} must not exceed value {v}");
            // Relative sketch error is bounded by one sub-bucket width.
            if v >= 32 {
                assert!(
                    (v - lb) as f64 / v as f64 <= 1.0 / 16.0 + 1e-9,
                    "error too large at {v}: bucket lower bound {lb}"
                );
            } else {
                assert_eq!(lb, v, "small values are exact");
            }
            last = Some((v, idx));
        }
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let m = Metrics::new();
        for v in 1..=1000u64 {
            m.observe("lat", v);
        }
        let h = m.histogram("lat").unwrap();
        // Small values are exact; larger ones within one sub-bucket (6.25%).
        assert_eq!(h.quantile(0.0), 1);
        assert!((470..=500).contains(&h.p50), "p50 = {}", h.p50);
        assert!((845..=900).contains(&h.p90), "p90 = {}", h.p90);
        assert!((930..=990).contains(&h.p99), "p99 = {}", h.p99);
        assert!((937..=1000).contains(&h.p999), "p999 = {}", h.p999);
        assert_eq!(h.quantile(1.0), h.max.clamp(h.min, h.max));
    }

    #[test]
    fn quantile_merge_is_order_independent() {
        // Sketches merged from shards equal the sketch that saw every
        // observation directly — the scheduler's worker-merge invariant,
        // extended to quantiles.
        let direct = Metrics::new();
        let shards: Vec<Metrics> = (0..4).map(|_| Metrics::new()).collect();
        for v in 0..500u64 {
            let x = (v * 2654435761) % 10_000; // deterministic scatter
            direct.observe("lat", x);
            shards[(v % 4) as usize].observe("lat", x);
        }
        let merged = Metrics::new();
        // Merge in reverse order to stress order-independence.
        for s in shards.iter().rev() {
            merged.merge(&s.snapshot());
        }
        assert_eq!(merged.snapshot(), direct.snapshot());
    }

    #[test]
    fn pre_sketch_snapshot_deserializes_and_falls_back() {
        // A snapshot written before the sketch existed has no buckets.
        let json = r#"{"count":3,"sum":30,"min":5,"max":20}"#;
        let h: HistogramSnapshot = serde_json::from_str(json).unwrap();
        assert!(h.buckets.is_empty());
        assert_eq!(h.quantile(0.5), 20, "falls back to max without a sketch");
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let m = std::sync::Arc::new(Metrics::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.incr("shared", 1);
                        m.observe("obs", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.counter("shared"), 4000);
        assert_eq!(m.histogram("obs").unwrap().count, 4000);
    }
}
