//! # peertrust-telemetry
//!
//! The observability layer for PeerTrust negotiations: structured tracing
//! spans, a metrics registry of named counters and histograms, and a
//! chronological per-negotiation [`Timeline`] export.
//!
//! The 2004 prototype had no instrumentation beyond Prolog trace output;
//! every experiment figure in the paper is an aggregate the authors
//! computed by hand. This crate makes those aggregates — queries issued
//! and answered per peer, messages and payload bytes on the wire,
//! disclosures granted and refused by reason, SLD resolution steps,
//! negotiation rounds and simulated ticks — first-class, so experiment
//! tables are read off a registry instead of re-derived.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when off.** The default handle ([`Telemetry::disabled`])
//!    holds no allocation and every instrumentation site guards on
//!    [`Telemetry::enabled`], a null check. Hot paths (the SLD inner loop)
//!    accumulate into their existing counters and flush once per call.
//! 2. **Thread-safe.** [`Recorder`] implementations are `Send + Sync`;
//!    sinks lock internally. The same handle serves the deterministic
//!    [`SimNetwork`](../peertrust_net/sim/index.html) and the threaded
//!    crossbeam transport.
//! 3. **No external dependencies.** Like `peertrust_crypto::sha256`, the
//!    ring buffer, registry, and JSONL writer are hand-rolled on std.
//!
//! Time is the same [`Tick`] the crypto layer uses for credential validity
//! windows: instrumented layers stamp events with their domain clock (the
//! simulated network's tick where one exists), while a global sequence
//! number gives a total order across layers.

pub mod event;
pub mod metrics;
pub mod recorder;
pub mod timeline;
pub mod trace;

pub use event::{Field, SpanId, TraceEvent, Value};
pub use metrics::{HistogramSnapshot, Metrics, MetricsSnapshot};
pub use recorder::{JsonlWriter, NoopRecorder, Recorder, RingBuffer};
pub use timeline::{Span, Timeline};
pub use trace::{critical_path_summary, to_chrome_json, CriticalPath, SpanKind, Trace, TraceSpan};

pub use peertrust_crypto::Tick;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Inner {
    recorder: Box<dyn Recorder>,
    metrics: Metrics,
    /// Global event sequence — the total order across layers.
    seq: AtomicU64,
    next_span: AtomicU64,
}

/// A cloneable handle to one telemetry pipeline (recorder + metrics).
///
/// `Telemetry::disabled()` is the no-op default: no allocation, and
/// [`Telemetry::enabled`] is a null check, so instrumented code pays one
/// branch when telemetry is off.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// The no-op handle: records nothing, counts nothing.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// A live pipeline feeding `recorder`.
    pub fn with_recorder(recorder: Box<dyn Recorder>) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                recorder,
                metrics: Metrics::new(),
                // Span id 0 means "no span", so both counters start at 1.
                seq: AtomicU64::new(1),
                next_span: AtomicU64::new(1),
            })),
        }
    }

    /// A live pipeline backed by an in-memory ring buffer of `capacity`
    /// events. Returns the handle and the shared buffer for inspection.
    pub fn ring(capacity: usize) -> (Telemetry, Arc<RingBuffer>) {
        let ring = Arc::new(RingBuffer::new(capacity));
        let tele = Telemetry::with_recorder(Box::new(SharedRing(ring.clone())));
        (tele, ring)
    }

    /// The cheap guard every instrumentation site checks first.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The metrics registry, if enabled.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.inner.as_deref().map(|i| &i.metrics)
    }

    /// Increment counter `name` by `by` (no-op when disabled).
    #[inline]
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.metrics.incr(name, by);
        }
    }

    /// Record `value` into histogram `name` (no-op when disabled).
    #[inline]
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.metrics.observe(name, value);
        }
    }

    /// Emit one event. `span`/`negotiation` may be 0 ("none").
    pub fn event(&self, at: Tick, span: SpanId, negotiation: u64, kind: &str, fields: Vec<Field>) {
        if let Some(inner) = self.inner.as_deref() {
            let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
            inner.recorder.record(TraceEvent {
                seq,
                at,
                span: span.0,
                negotiation,
                kind: kind.to_string(),
                fields,
            });
        }
    }

    /// Open a span: allocates an id and emits a `span.start` event carrying
    /// the span's name. Returns [`SpanId::NONE`] when disabled, which
    /// [`Telemetry::span_end`] ignores.
    pub fn span_start(
        &self,
        at: Tick,
        negotiation: u64,
        name: &str,
        mut fields: Vec<Field>,
    ) -> SpanId {
        let Some(inner) = self.inner.as_deref() else {
            return SpanId::NONE;
        };
        let id = SpanId(inner.next_span.fetch_add(1, Ordering::Relaxed));
        fields.insert(0, Field::str("name", name));
        self.event(at, id, negotiation, "span.start", fields);
        id
    }

    /// Close a span opened with [`Telemetry::span_start`].
    pub fn span_end(&self, at: Tick, span: SpanId, negotiation: u64, fields: Vec<Field>) {
        if span == SpanId::NONE {
            return;
        }
        self.event(at, span, negotiation, "span.end", fields);
    }

    /// Flush the underlying recorder (meaningful for buffered writers).
    pub fn flush(&self) {
        if let Some(inner) = self.inner.as_deref() {
            inner.recorder.flush();
        }
    }
}

/// Adapter: an `Arc<RingBuffer>` shared between the pipeline and the
/// inspecting test/bench code.
struct SharedRing(Arc<RingBuffer>);

impl Recorder for SharedRing {
    fn record(&self, event: TraceEvent) {
        self.0.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        t.incr("x", 1);
        t.observe("y", 5);
        t.event(0, SpanId::NONE, 0, "k", vec![]);
        let span = t.span_start(0, 0, "s", vec![]);
        assert_eq!(span, SpanId::NONE);
        t.span_end(0, span, 0, vec![]);
        assert!(t.metrics().is_none());
    }

    #[test]
    fn ring_pipeline_records_events_and_metrics() {
        let (t, ring) = Telemetry::ring(16);
        assert!(t.enabled());
        t.incr("queries", 2);
        t.incr("queries", 1);
        t.observe("depth", 4);
        let span = t.span_start(10, 7, "negotiation", vec![Field::str("goal", "r(x)")]);
        t.event(11, span, 7, "query", vec![Field::u64("qid", 1)]);
        t.span_end(12, span, 7, vec![]);

        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, "span.start");
        assert_eq!(events[1].kind, "query");
        assert_eq!(events[2].kind, "span.end");
        // Same span id throughout, global sequence strictly increasing.
        assert!(events.iter().all(|e| e.span == span.0));
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));

        let m = t.metrics().unwrap().snapshot();
        assert_eq!(m.counters["queries"], 3);
        assert_eq!(m.histograms["depth"].count, 1);
        assert_eq!(m.histograms["depth"].max, 4);
    }

    #[test]
    fn spans_get_distinct_ids() {
        let (t, _ring) = Telemetry::ring(8);
        let a = t.span_start(0, 1, "a", vec![]);
        let b = t.span_start(0, 2, "b", vec![]);
        assert_ne!(a, b);
        assert_ne!(a, SpanId::NONE);
    }
}
