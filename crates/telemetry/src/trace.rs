//! Cross-peer causal traces: DAG reconstruction, critical-path
//! profiling, and Chrome trace-event export.
//!
//! A negotiation is one *trace* (trace id = negotiation id). Inside a
//! trace, the session and the transports emit events carrying span
//! coordinates in their fields — `trace`, `span`, `parent` — where span
//! ids are allocated from a per-negotiation counter (NOT the global
//! telemetry span counter), so the reconstructed trace is deterministic
//! across runs and scheduler worker counts. Four span kinds exist:
//!
//! * **root** — the whole negotiation, opened/closed by the session
//!   (`trace.start`/`trace.end` events);
//! * **request** — one remote query evaluated by a peer, nested under
//!   the requesting span (`trace.start`/`trace.end`);
//! * **transit** — one message on the wire, derived from a `net.send`
//!   (or `net.thread.send`) event and closed by the matching
//!   `net.deliver`/`net.thread.recv`; a transit that never closes was
//!   dropped by the fault lane;
//! * **backoff** — a resilience retry wait (`trace.start`/`trace.end`).
//!
//! `net.fault` events carrying a `span` field annotate the owning
//! transit span, so injected drops/delays/corruptions are visible on the
//! critical path. Because the session driver is synchronous in simulated
//! time, the whole negotiation IS the critical path; the useful output is
//! its decomposition — local solve ticks vs network wait vs retry
//! backoff — computed as exact interval-union measures that always sum
//! to the end-to-end duration.
//!
//! [`to_chrome_json`] renders traces in the Chrome trace-event format
//! (load `trace.json` at <https://ui.perfetto.dev> or
//! `chrome://tracing`): one "process" per negotiation, one "thread" lane
//! per peer, complete (`ph:"X"`) events per span, and instant events for
//! faults. The export contains no global sequence numbers, so its bytes
//! are identical for identical negotiations regardless of how many
//! scheduler workers recorded them.

use crate::event::TraceEvent;
use std::collections::BTreeMap;

/// What a reconstructed span represents.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanKind {
    /// The whole negotiation.
    Root,
    /// One remote query evaluated by a peer.
    Request,
    /// One message on the wire.
    Transit,
    /// A resilience retry wait.
    Backoff,
}

impl SpanKind {
    fn parse(s: &str) -> SpanKind {
        match s {
            "root" => SpanKind::Root,
            "backoff" => SpanKind::Backoff,
            "transit" => SpanKind::Transit,
            _ => SpanKind::Request,
        }
    }

    /// Category string used in the Chrome export.
    pub fn category(&self) -> &'static str {
        match self {
            SpanKind::Root => "root",
            SpanKind::Request => "request",
            SpanKind::Transit => "transit",
            SpanKind::Backoff => "backoff",
        }
    }
}

/// One node of the causal DAG.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceSpan {
    /// Trace (= negotiation) this span belongs to.
    pub trace: u64,
    /// Span id, allocated per-negotiation (root is always 1).
    pub id: u64,
    /// Parent span id (0 for the root).
    pub parent: u64,
    pub name: String,
    /// Peer whose lane the span renders on (the executing/receiving peer).
    pub peer: String,
    pub kind: SpanKind,
    pub start: u64,
    pub end: u64,
    /// For transit spans: whether the message was actually delivered.
    /// A `false` here with `start == end` is a fault-lane drop.
    pub delivered: bool,
    /// Fault-lane annotations on this span, as `"<kind>@<tick>"`.
    pub faults: Vec<String>,
}

impl TraceSpan {
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// One hop on the critical path (a delivered transit span).
#[derive(Clone, PartialEq, Debug)]
pub struct Hop {
    pub span: u64,
    pub name: String,
    pub peer: String,
    pub start: u64,
    pub end: u64,
    pub faults: Vec<String>,
}

/// Exact decomposition of a negotiation's end-to-end latency. The three
/// components are interval-union measures clipped to the root span, so
/// `solve_ticks + net_wait_ticks + backoff_ticks == total_ticks` always
/// holds (overlap between backoff and in-flight transit is attributed to
/// network wait).
#[derive(Clone, PartialEq, Debug)]
pub struct CriticalPath {
    pub trace: u64,
    pub total_ticks: u64,
    /// Ticks where at least one message was in flight.
    pub net_wait_ticks: u64,
    /// Ticks spent in retry backoff with nothing in flight.
    pub backoff_ticks: u64,
    /// The remainder: local SLD solving and bookkeeping.
    pub solve_ticks: u64,
    /// Delivered transit spans, in chronological order.
    pub hops: Vec<Hop>,
}

/// The reconstructed causal DAG of one negotiation.
#[derive(Clone, PartialEq, Debug)]
pub struct Trace {
    /// Trace id (= negotiation id).
    pub id: u64,
    /// Spans sorted by id (allocation order within the negotiation).
    pub spans: Vec<TraceSpan>,
    /// Deliver events that had no matching send ([`Trace::validate`]
    /// rejects these): `(span id, tick)`.
    pub orphan_delivers: Vec<(u64, u64)>,
}

impl Trace {
    /// Reconstruct one trace per negotiation from a recorded event
    /// stream, ordered by trace id. Events without trace coordinates are
    /// ignored, so this can consume the same stream `Timeline` does.
    pub fn from_events(events: &[TraceEvent]) -> Vec<Trace> {
        let mut evs: Vec<&TraceEvent> = events.iter().collect();
        evs.sort_by_key(|e| e.seq);

        // trace id -> span id -> span, insertion-ordered per trace.
        let mut traces: BTreeMap<u64, Trace> = BTreeMap::new();
        // Fault annotations whose span did not exist yet when the fault
        // event was recorded (the simulator decides a message's fate at
        // send time, *before* it emits the `net.send` that opens the
        // transit span): `(trace, span, label, tick)`, resolved after
        // the main pass.
        let mut pending_faults: Vec<(u64, u64, String, u64)> = Vec::new();
        for e in evs {
            let Some(trace_id) = e.u64_field("trace") else {
                continue;
            };
            let t = traces.entry(trace_id).or_insert_with(|| Trace {
                id: trace_id,
                spans: Vec::new(),
                orphan_delivers: Vec::new(),
            });
            let span_id = e.u64_field("span").unwrap_or(0);
            match e.kind.as_str() {
                "trace.start" => t.spans.push(TraceSpan {
                    trace: trace_id,
                    id: span_id,
                    parent: e.u64_field("parent").unwrap_or(0),
                    name: e.str_field("name").unwrap_or("<unnamed>").to_string(),
                    peer: e.str_field("peer").unwrap_or("").to_string(),
                    kind: SpanKind::parse(e.str_field("kind").unwrap_or("")),
                    start: e.at,
                    end: e.at,
                    delivered: true,
                    faults: Vec::new(),
                }),
                "trace.end" => {
                    if let Some(s) = t.spans.iter_mut().find(|s| s.id == span_id) {
                        s.end = s.end.max(e.at);
                    }
                }
                "net.send" | "net.thread.send" => t.spans.push(TraceSpan {
                    trace: trace_id,
                    id: span_id,
                    parent: e.u64_field("parent").unwrap_or(0),
                    name: format!(
                        "transit {} {}\u{2192}{}",
                        e.str_field("kind").unwrap_or("?"),
                        e.str_field("from").unwrap_or("?"),
                        e.str_field("to").unwrap_or("?"),
                    ),
                    peer: e.str_field("to").unwrap_or("").to_string(),
                    kind: SpanKind::Transit,
                    start: e.at,
                    end: e.at,
                    delivered: false,
                    faults: Vec::new(),
                }),
                "net.deliver" | "net.thread.recv" => {
                    match t
                        .spans
                        .iter_mut()
                        .find(|s| s.id == span_id && s.kind == SpanKind::Transit)
                    {
                        Some(s) => {
                            s.end = s.end.max(e.at);
                            s.delivered = true;
                        }
                        None => t.orphan_delivers.push((span_id, e.at)),
                    }
                }
                k if k.starts_with("net.fault") => {
                    let label = format!("{}@{}", e.str_field("kind").unwrap_or("fault"), e.at);
                    match t.spans.iter_mut().find(|s| s.id == span_id) {
                        Some(s) => {
                            s.faults.push(label);
                            s.end = s.end.max(e.at);
                        }
                        None => pending_faults.push((trace_id, span_id, label, e.at)),
                    }
                }
                _ => {}
            }
        }

        for (trace_id, span_id, label, at) in pending_faults {
            if let Some(s) = traces
                .get_mut(&trace_id)
                .and_then(|t| t.spans.iter_mut().find(|s| s.id == span_id))
            {
                s.faults.push(label);
                s.end = s.end.max(at);
            }
        }

        let mut out: Vec<Trace> = traces.into_values().collect();
        for t in &mut out {
            t.spans.sort_by_key(|s| s.id);
        }
        out
    }

    /// The span with the given id.
    pub fn span(&self, id: u64) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// The root span (parent 0), if the trace is well-formed.
    pub fn root(&self) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.parent == 0)
    }

    /// Well-formedness: exactly one root, every parent edge resolves,
    /// every deliver matched a send, every span's interval is ordered and
    /// nested inside its parent's.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(&(span, at)) = self.orphan_delivers.first() {
            return Err(format!(
                "trace {}: deliver for span {span} at tick {at} has no matching send",
                self.id
            ));
        }
        let roots = self.spans.iter().filter(|s| s.parent == 0).count();
        if roots != 1 {
            return Err(format!("trace {}: {roots} root spans (want 1)", self.id));
        }
        let by_id: BTreeMap<u64, &TraceSpan> = self.spans.iter().map(|s| (s.id, s)).collect();
        if by_id.len() != self.spans.len() {
            return Err(format!("trace {}: duplicate span ids", self.id));
        }
        for s in &self.spans {
            if s.start > s.end {
                return Err(format!(
                    "trace {}: span {} ends ({}) before it starts ({})",
                    self.id, s.id, s.end, s.start
                ));
            }
            if s.parent == 0 {
                continue;
            }
            let Some(p) = by_id.get(&s.parent) else {
                return Err(format!(
                    "trace {}: span {} has unknown parent {}",
                    self.id, s.id, s.parent
                ));
            };
            if s.start < p.start || s.end > p.end {
                return Err(format!(
                    "trace {}: span {} [{}, {}] escapes parent {} [{}, {}]",
                    self.id, s.id, s.start, s.end, p.id, p.start, p.end
                ));
            }
        }
        Ok(())
    }

    /// Decompose the end-to-end latency into solve / network wait /
    /// retry backoff, with the delivered transits as hops.
    pub fn critical_path(&self) -> CriticalPath {
        let (root_start, root_end) = match self.root() {
            Some(r) => (r.start, r.end),
            None => (0, 0),
        };
        let clip = |s: &TraceSpan| -> Option<(u64, u64)> {
            let a = s.start.max(root_start);
            let b = s.end.min(root_end);
            (a < b).then_some((a, b))
        };
        let net: Vec<(u64, u64)> = self
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Transit && s.delivered)
            .filter_map(clip)
            .collect();
        let mut net_and_backoff = net.clone();
        net_and_backoff.extend(
            self.spans
                .iter()
                .filter(|s| s.kind == SpanKind::Backoff)
                .filter_map(clip),
        );
        let total = root_end.saturating_sub(root_start);
        let net_wait = union_measure(net);
        let backoff = union_measure(net_and_backoff) - net_wait;
        let mut hops: Vec<Hop> = self
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Transit && s.delivered)
            .map(|s| Hop {
                span: s.id,
                name: s.name.clone(),
                peer: s.peer.clone(),
                start: s.start,
                end: s.end,
                faults: s.faults.clone(),
            })
            .collect();
        hops.sort_by_key(|h| (h.start, h.span));
        CriticalPath {
            trace: self.id,
            total_ticks: total,
            net_wait_ticks: net_wait,
            backoff_ticks: backoff,
            solve_ticks: total - net_wait - backoff,
            hops,
        }
    }
}

/// Total length covered by a set of (possibly overlapping) intervals.
fn union_measure(mut intervals: Vec<(u64, u64)>) -> u64 {
    intervals.sort_unstable();
    let mut covered = 0u64;
    let mut reach = 0u64;
    for (a, b) in intervals {
        if b <= reach {
            continue;
        }
        covered += b - a.max(reach);
        reach = b;
    }
    covered
}

/// Render the critical path as a short text report.
pub fn critical_path_summary(cp: &CriticalPath) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace {}: {} ticks end-to-end = {} solve + {} net wait + {} backoff ({} hops)",
        cp.trace,
        cp.total_ticks,
        cp.solve_ticks,
        cp.net_wait_ticks,
        cp.backoff_ticks,
        cp.hops.len()
    );
    for h in &cp.hops {
        let _ = write!(
            out,
            "  span {:>3} [{:>4}, {:>4}] {:>4} ticks  {}",
            h.span,
            h.start,
            h.end,
            h.end - h.start,
            h.name
        );
        if h.faults.is_empty() {
            out.push('\n');
        } else {
            let _ = writeln!(out, "  !{}", h.faults.join(" !"));
        }
    }
    out
}

/// Escape a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render traces in the Chrome trace-event JSON format (Perfetto /
/// `chrome://tracing` loadable). One process per trace, one thread lane
/// per peer, `ph:"X"` complete events per span, `ph:"i"` instants for
/// fault annotations. Ticks map to microseconds. The output is fully
/// deterministic: no sequence numbers, stable ordering (traces by id,
/// spans by id, peers sorted by name).
pub fn to_chrome_json(traces: &[Trace]) -> String {
    use std::fmt::Write;
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
        out.push_str(&s);
    };

    let mut sorted: Vec<&Trace> = traces.iter().collect();
    sorted.sort_by_key(|t| t.id);
    for t in sorted {
        let mut peers: Vec<&str> = t.spans.iter().map(|s| s.peer.as_str()).collect();
        peers.sort_unstable();
        peers.dedup();
        let lane = |peer: &str| peers.iter().position(|p| *p == peer).unwrap_or(0);

        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{},\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"negotiation {}\"}}}}",
                t.id, t.id
            ),
            &mut out,
            &mut first,
        );
        for (i, p) in peers.iter().enumerate() {
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    t.id,
                    i,
                    escape_json(p)
                ),
                &mut out,
                &mut first,
            );
        }
        for s in &t.spans {
            let mut ev = format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":{},\"args\":{{\"span\":{},\"parent\":{}",
                escape_json(&s.name),
                s.kind.category(),
                s.start,
                s.duration(),
                t.id,
                lane(&s.peer),
                s.id,
                s.parent
            );
            if s.kind == SpanKind::Transit && !s.delivered {
                ev.push_str(",\"dropped\":true");
            }
            ev.push_str("}}");
            push(ev, &mut out, &mut first);
            for f in &s.faults {
                push(
                    format!(
                        "{{\"name\":\"fault: {}\",\"cat\":\"fault\",\"ph\":\"i\",\"ts\":{},\
                         \"pid\":{},\"tid\":{},\"s\":\"t\",\"args\":{{\"span\":{}}}}}",
                        escape_json(f),
                        f.rsplit('@')
                            .next()
                            .and_then(|t| t.parse::<u64>().ok())
                            .unwrap_or(s.start),
                        t.id,
                        lane(&s.peer),
                        s.id
                    ),
                    &mut out,
                    &mut first,
                );
            }
        }
    }
    let _ = write!(out, "\n]}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Field;
    use crate::Telemetry;

    /// A synthetic two-peer negotiation: root on Alice, one request on
    /// Bob with a query transit out (fault-delayed), an answer transit
    /// back, and a backoff wait overlapping nothing.
    fn sample_events() -> Vec<TraceEvent> {
        let (t, ring) = Telemetry::ring(64);
        let tr = |v| Field::u64("trace", v);
        t.event(
            0,
            crate::SpanId::NONE,
            1,
            "trace.start",
            vec![
                tr(1),
                Field::u64("span", 1),
                Field::u64("parent", 0),
                Field::str("name", "negotiation"),
                Field::str("peer", "Alice"),
                Field::str("kind", "root"),
            ],
        );
        t.event(
            0,
            crate::SpanId::NONE,
            1,
            "trace.start",
            vec![
                tr(1),
                Field::u64("span", 2),
                Field::u64("parent", 1),
                Field::str("name", "request r(x) @ Bob"),
                Field::str("peer", "Bob"),
                Field::str("kind", "request"),
            ],
        );
        t.event(
            0,
            crate::SpanId::NONE,
            1,
            "net.send",
            vec![
                Field::str("from", "Alice"),
                Field::str("to", "Bob"),
                Field::str("kind", "query"),
                tr(1),
                Field::u64("span", 3),
                Field::u64("parent", 2),
            ],
        );
        t.event(
            1,
            crate::SpanId::NONE,
            1,
            "net.fault",
            vec![
                Field::str("kind", "delay"),
                tr(1),
                Field::u64("span", 3),
                Field::u64("parent", 2),
            ],
        );
        t.event(
            4,
            crate::SpanId::NONE,
            1,
            "net.deliver",
            vec![
                Field::str("to", "Bob"),
                Field::str("kind", "query"),
                tr(1),
                Field::u64("span", 3),
            ],
        );
        // Backoff while waiting for the (delayed) answer.
        t.event(
            4,
            crate::SpanId::NONE,
            1,
            "trace.start",
            vec![
                tr(1),
                Field::u64("span", 4),
                Field::u64("parent", 2),
                Field::str("name", "backoff"),
                Field::str("peer", "Alice"),
                Field::str("kind", "backoff"),
            ],
        );
        t.event(6, crate::SpanId::NONE, 1, "trace.end", {
            vec![tr(1), Field::u64("span", 4)]
        });
        t.event(
            6,
            crate::SpanId::NONE,
            1,
            "net.send",
            vec![
                Field::str("from", "Bob"),
                Field::str("to", "Alice"),
                Field::str("kind", "answers"),
                tr(1),
                Field::u64("span", 5),
                Field::u64("parent", 2),
            ],
        );
        t.event(
            8,
            crate::SpanId::NONE,
            1,
            "net.deliver",
            vec![
                Field::str("to", "Alice"),
                Field::str("kind", "answers"),
                tr(1),
                Field::u64("span", 5),
            ],
        );
        t.event(8, crate::SpanId::NONE, 1, "trace.end", {
            vec![tr(1), Field::u64("span", 2)]
        });
        t.event(10, crate::SpanId::NONE, 1, "trace.end", {
            vec![tr(1), Field::u64("span", 1)]
        });
        ring.events()
    }

    #[test]
    fn reconstructs_a_well_formed_trace() {
        let traces = Trace::from_events(&sample_events());
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.id, 1);
        assert_eq!(t.spans.len(), 5);
        t.validate().expect("well-formed");

        let root = t.root().unwrap();
        assert_eq!((root.id, root.start, root.end), (1, 0, 10));
        let query = t.span(3).unwrap();
        assert_eq!(query.kind, SpanKind::Transit);
        assert!(query.delivered);
        assert_eq!((query.start, query.end), (0, 4));
        assert_eq!(query.faults, ["delay@1"]);
        assert_eq!(query.parent, 2);
    }

    #[test]
    fn critical_path_decomposes_exactly() {
        let traces = Trace::from_events(&sample_events());
        let cp = traces[0].critical_path();
        assert_eq!(cp.total_ticks, 10);
        // Transits cover [0,4] and [6,8]; backoff [4,6] overlaps neither.
        assert_eq!(cp.net_wait_ticks, 6);
        assert_eq!(cp.backoff_ticks, 2);
        assert_eq!(cp.solve_ticks, 2);
        assert_eq!(
            cp.solve_ticks + cp.net_wait_ticks + cp.backoff_ticks,
            cp.total_ticks
        );
        assert_eq!(cp.hops.len(), 2);
        assert_eq!(cp.hops[0].span, 3);

        let summary = critical_path_summary(&cp);
        assert!(summary.contains("10 ticks end-to-end"));
        assert!(summary.contains("!delay@1"));
    }

    #[test]
    fn orphan_deliver_fails_validation() {
        let (t, ring) = Telemetry::ring(8);
        t.event(
            0,
            crate::SpanId::NONE,
            1,
            "trace.start",
            vec![
                Field::u64("trace", 1),
                Field::u64("span", 1),
                Field::u64("parent", 0),
                Field::str("name", "negotiation"),
                Field::str("kind", "root"),
            ],
        );
        t.event(
            3,
            crate::SpanId::NONE,
            1,
            "net.deliver",
            vec![Field::u64("trace", 1), Field::u64("span", 9)],
        );
        let traces = Trace::from_events(&ring.events());
        let err = traces[0].validate().unwrap_err();
        assert!(err.contains("no matching send"), "{err}");
    }

    #[test]
    fn escaping_and_chrome_schema() {
        let mut spans = vec![TraceSpan {
            trace: 1,
            id: 1,
            parent: 0,
            name: "needs \"escaping\"\n\\".to_string(),
            peer: "Alice".to_string(),
            kind: SpanKind::Root,
            start: 0,
            end: 5,
            delivered: true,
            faults: vec![],
        }];
        spans.push(TraceSpan {
            trace: 1,
            id: 2,
            parent: 1,
            name: "transit query Alice\u{2192}Bob".to_string(),
            peer: "Bob".to_string(),
            kind: SpanKind::Transit,
            start: 1,
            end: 1,
            delivered: false,
            faults: vec!["drop@1".to_string()],
        });
        let trace = Trace {
            id: 1,
            spans,
            orphan_delivers: vec![],
        };
        let json = to_chrome_json(&[trace]);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = parsed["traceEvents"].as_array().expect("traceEvents");
        // 1 process metadata + 2 thread metadata + 2 spans + 1 fault.
        assert_eq!(events.len(), 6);
        for e in events {
            assert!(e.get("ph").is_some() && e.get("pid").is_some());
            if e["ph"] == "X" {
                for k in ["name", "cat", "ts", "dur", "tid", "args"] {
                    assert!(e.get(k).is_some(), "complete event missing {k}");
                }
            }
        }
        let dropped = events
            .iter()
            .find(|e| e["ph"] == "X" && e["args"].get("dropped").is_some())
            .expect("dropped transit annotated");
        assert_eq!(dropped["args"]["dropped"], true);
    }

    #[test]
    fn chrome_export_is_deterministic() {
        let a = to_chrome_json(&Trace::from_events(&sample_events()));
        let b = to_chrome_json(&Trace::from_events(&sample_events()));
        assert_eq!(a, b);
        assert!(a.contains("\"ph\":\"i\""), "fault instant present");
    }
}
