//! Recorder sinks.
//!
//! A [`Recorder`] receives every [`TraceEvent`] the pipeline emits. Two
//! sinks are provided: an in-memory [`RingBuffer`] (bounded, oldest-first
//! eviction — the default for tests and interactive inspection) and a
//! [`JsonlWriter`] streaming one JSON object per line to any `io::Write`
//! (the archival/offline-analysis format; `Timeline::from_jsonl` reads it
//! back).

use crate::event::TraceEvent;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::Write;

/// A sink for trace events. Implementations must be cheap enough to sit on
/// the negotiation path and safe to share across peer threads.
pub trait Recorder: Send + Sync {
    /// Accept one event.
    fn record(&self, event: TraceEvent);

    /// Flush buffered output (default: nothing to flush).
    fn flush(&self) {}
}

/// Discards everything. [`crate::Telemetry::disabled`] short-circuits
/// before events are even constructed; this sink exists for measuring the
/// cost of event construction itself (the telemetry overhead bench).
#[derive(Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _event: TraceEvent) {}
}

struct RingInner {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// Bounded in-memory buffer: keeps the most recent `capacity` events,
/// counting evictions.
pub struct RingBuffer {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl RingBuffer {
    pub fn new(capacity: usize) -> RingBuffer {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBuffer {
            capacity,
            inner: Mutex::new(RingInner {
                events: VecDeque::with_capacity(capacity),
                dropped: 0,
            }),
        }
    }

    /// Copy out the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// How many events were evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().events.is_empty()
    }

    /// Drop all buffered events (the eviction counter is kept).
    pub fn clear(&self) {
        self.inner.lock().events.clear();
    }
}

impl Recorder for RingBuffer {
    fn record(&self, event: TraceEvent) {
        let mut inner = self.inner.lock();
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    }
}

/// Streams events as JSON Lines: one `serde_json` object per event per
/// line. Serialization errors are unrecoverable programming errors (every
/// event field type is serializable), so they panic.
pub struct JsonlWriter<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlWriter<W> {
    pub fn new(writer: W) -> JsonlWriter<W> {
        JsonlWriter {
            writer: Mutex::new(writer),
        }
    }

    /// Recover the underlying writer (flushing it first).
    pub fn into_inner(self) -> W {
        let mut w = self.writer.into_inner();
        let _ = w.flush();
        w
    }
}

impl<W: Write + Send> Recorder for JsonlWriter<W> {
    fn record(&self, event: TraceEvent) {
        let line = serde_json::to_string(&event).expect("events serialize");
        let mut w = self.writer.lock();
        // An I/O error on a telemetry sink must not abort a negotiation:
        // drop the event instead.
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Field;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent {
            seq,
            at: seq * 10,
            span: 1,
            negotiation: 1,
            kind: "test".into(),
            fields: vec![Field::u64("n", seq)],
        }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let ring = RingBuffer::new(3);
        for i in 0..5 {
            ring.record(ev(i));
        }
        let seqs: Vec<u64> = ring.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [2, 3, 4]);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.len(), 3);
        assert!(!ring.is_empty());
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 2, "eviction count survives clear");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = RingBuffer::new(0);
    }

    #[test]
    fn jsonl_writer_emits_one_line_per_event() {
        let sink = JsonlWriter::new(Vec::<u8>::new());
        sink.record(ev(1));
        sink.record(ev(2));
        sink.flush();
        let out = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let back: TraceEvent = serde_json::from_str(line).unwrap();
            assert_eq!(back, ev(i as u64 + 1));
        }
    }

    #[test]
    fn recorders_are_shareable_across_threads() {
        let ring = std::sync::Arc::new(RingBuffer::new(1024));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        ring.record(ev(t * 100 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.len(), 400);
    }
}
