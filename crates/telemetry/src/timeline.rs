//! Chronological per-negotiation view of an event stream.
//!
//! [`crate::Telemetry`] emits a flat, interleaved stream: engine, network
//! and negotiation events from every concurrent negotiation share one
//! sequence. A [`Timeline`] regroups that stream by negotiation id and
//! reconstructs span intervals from their `span.start`/`span.end` event
//! pairs — the run-time complement to `peertrust_engine::explain`, which
//! renders a single proof tree after the fact: the timeline shows *when*
//! each query, disclosure and refusal happened, across peers, in order.

use crate::event::{SpanId, TraceEvent};

/// A reconstructed span interval.
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct Span {
    pub id: u64,
    pub name: String,
    pub negotiation: u64,
    /// Sequence numbers of the delimiting events (`end_seq` is 0 for a
    /// span never closed — e.g. truncated by ring-buffer eviction).
    pub start_seq: u64,
    pub end_seq: u64,
    /// Domain ticks of the delimiting events.
    pub start_at: u64,
    pub end_at: u64,
}

impl Span {
    /// Ticks between start and end (0 if still open).
    pub fn duration(&self) -> u64 {
        self.end_at.saturating_sub(self.start_at)
    }
}

/// All telemetry belonging to one negotiation, in sequence order.
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct Timeline {
    pub negotiation: u64,
    pub spans: Vec<Span>,
    pub events: Vec<TraceEvent>,
}

impl Timeline {
    /// Group `events` into one timeline per negotiation id, ordered by id.
    /// Events with negotiation 0 (layer-internal, e.g. standalone engine
    /// runs) are grouped under a timeline with `negotiation == 0`.
    pub fn from_events(events: &[TraceEvent]) -> Vec<Timeline> {
        let mut ids: Vec<u64> = events.iter().map(|e| e.negotiation).collect();
        ids.sort_unstable();
        ids.dedup();

        ids.into_iter()
            .map(|nid| {
                let mut evs: Vec<TraceEvent> = events
                    .iter()
                    .filter(|e| e.negotiation == nid)
                    .cloned()
                    .collect();
                evs.sort_by_key(|e| e.seq);
                let spans = reconstruct_spans(&evs, nid);
                Timeline {
                    negotiation: nid,
                    spans,
                    events: evs,
                }
            })
            .collect()
    }

    /// Events of a given kind, in order.
    pub fn events_of_kind(&self, kind: &str) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }

    /// The span named `name`, if present.
    pub fn span_named(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Serialize the timeline's events as JSON Lines (the archival
    /// format; spans are derived data and are reconstructed on load).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&serde_json::to_string(e).expect("events serialize"));
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL event dump (as written by [`Timeline::to_jsonl`] or
    /// [`crate::JsonlWriter`]) back into timelines.
    pub fn from_jsonl(input: &str) -> Result<Vec<Timeline>, serde_json::Error> {
        let mut events = Vec::new();
        for line in input.lines() {
            if line.trim().is_empty() {
                continue;
            }
            events.push(serde_json::from_str::<TraceEvent>(line)?);
        }
        Ok(Timeline::from_events(&events))
    }
}

fn reconstruct_spans(events: &[TraceEvent], negotiation: u64) -> Vec<Span> {
    let mut spans: Vec<Span> = Vec::new();
    for e in events {
        let sid = SpanId(e.span);
        if sid == SpanId::NONE {
            continue;
        }
        match e.kind.as_str() {
            "span.start" => spans.push(Span {
                id: e.span,
                name: e.str_field("name").unwrap_or("<unnamed>").to_string(),
                negotiation,
                start_seq: e.seq,
                end_seq: 0,
                start_at: e.at,
                end_at: 0,
            }),
            "span.end" => {
                if let Some(span) = spans.iter_mut().rev().find(|s| s.id == e.span) {
                    span.end_seq = e.seq;
                    span.end_at = e.at;
                }
            }
            _ => {}
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Field;
    use crate::Telemetry;

    /// Drive a realistic two-negotiation stream through a ring pipeline.
    fn sample_events() -> Vec<TraceEvent> {
        let (t, ring) = Telemetry::ring(64);
        for nid in [1u64, 2] {
            let span = t.span_start(nid * 10, nid, "negotiation", vec![]);
            t.event(
                nid * 10 + 1,
                span,
                nid,
                "negotiation.query",
                vec![Field::u64("qid", 0)],
            );
            t.event(
                nid * 10 + 2,
                span,
                nid,
                "negotiation.disclosure",
                vec![Field::str("item", "credential")],
            );
            t.span_end(nid * 10 + 3, span, nid, vec![]);
        }
        ring.events()
    }

    #[test]
    fn groups_by_negotiation() {
        let timelines = Timeline::from_events(&sample_events());
        assert_eq!(timelines.len(), 2);
        assert_eq!(timelines[0].negotiation, 1);
        assert_eq!(timelines[1].negotiation, 2);
        for tl in &timelines {
            assert_eq!(tl.events.len(), 4);
            assert_eq!(tl.events_of_kind("negotiation.query").len(), 1);
        }
    }

    #[test]
    fn spans_are_reconstructed_with_durations() {
        let timelines = Timeline::from_events(&sample_events());
        let tl = &timelines[0];
        assert_eq!(tl.spans.len(), 1);
        let span = tl.span_named("negotiation").unwrap();
        assert_eq!(span.start_at, 10);
        assert_eq!(span.end_at, 13);
        assert_eq!(span.duration(), 3);
        assert!(span.start_seq < span.end_seq);
    }

    #[test]
    fn unclosed_span_has_zero_end() {
        let (t, ring) = Telemetry::ring(8);
        let _open = t.span_start(5, 1, "dangling", vec![]);
        let timelines = Timeline::from_events(&ring.events());
        let span = timelines[0].span_named("dangling").unwrap();
        assert_eq!(span.end_seq, 0);
        assert_eq!(span.duration(), 0);
    }

    #[test]
    fn jsonl_roundtrip_preserves_timelines() {
        let timelines = Timeline::from_events(&sample_events());
        let dump: String = timelines.iter().map(Timeline::to_jsonl).collect();
        let back = Timeline::from_jsonl(&dump).unwrap();
        assert_eq!(back, timelines);
    }

    #[test]
    fn malformed_jsonl_is_an_error() {
        assert!(Timeline::from_jsonl("{not json}").is_err());
        assert_eq!(Timeline::from_jsonl("\n  \n").unwrap().len(), 0);
    }
}
