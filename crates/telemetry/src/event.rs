//! The span/event model.
//!
//! A [`TraceEvent`] is one timestamped fact about the system. Spans are
//! not stored as objects: a span is the pair of `span.start`/`span.end`
//! events sharing a [`SpanId`], and [`crate::timeline`] reconstructs the
//! interval view from the event stream. This keeps the recorder interface
//! to a single method and makes the JSONL export self-contained.

use peertrust_crypto::Tick;

/// Identifies a span; `SpanId::NONE` (0) means "not inside any span".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SpanId(pub u64);

impl SpanId {
    pub const NONE: SpanId = SpanId(0);
}

/// A typed field value.
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub enum Value {
    U64(u64),
    I64(i64),
    Bool(bool),
    Str(String),
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => f.write_str(v),
        }
    }
}

/// One key/value pair attached to an event.
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct Field {
    pub key: String,
    pub value: Value,
}

impl Field {
    pub fn u64(key: &str, value: u64) -> Field {
        Field {
            key: key.to_string(),
            value: Value::U64(value),
        }
    }

    pub fn i64(key: &str, value: i64) -> Field {
        Field {
            key: key.to_string(),
            value: Value::I64(value),
        }
    }

    pub fn bool(key: &str, value: bool) -> Field {
        Field {
            key: key.to_string(),
            value: Value::Bool(value),
        }
    }

    pub fn str(key: &str, value: impl Into<String>) -> Field {
        Field {
            key: key.to_string(),
            value: Value::Str(value.into()),
        }
    }
}

/// One structured event.
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct TraceEvent {
    /// Global sequence number: the total order across layers.
    pub seq: u64,
    /// Domain time — the simulated network tick where one exists, 0 in
    /// purely local layers.
    pub at: Tick,
    /// Enclosing span (0 = none).
    pub span: u64,
    /// Negotiation this event belongs to (0 = none).
    pub negotiation: u64,
    /// What happened: `span.start`, `net.send`, `negotiation.refusal`, ...
    pub kind: String,
    pub fields: Vec<Field>,
}

impl TraceEvent {
    /// The value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|f| f.key == key).map(|f| &f.value)
    }

    /// String value of field `key`, if present and a string.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.field(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Unsigned value of field `key`, if present and numeric.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        match self.field(key) {
            Some(Value::U64(v)) => Some(*v),
            Some(Value::I64(v)) => u64::try_from(*v).ok(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceEvent {
        TraceEvent {
            seq: 3,
            at: 12,
            span: 1,
            negotiation: 7,
            kind: "net.send".into(),
            fields: vec![
                Field::str("from", "Alice"),
                Field::str("to", "E-Learn"),
                Field::u64("bytes", 211),
                Field::bool("ok", true),
                Field::i64("delta", -4),
            ],
        }
    }

    #[test]
    fn field_accessors() {
        let e = sample();
        assert_eq!(e.str_field("from"), Some("Alice"));
        assert_eq!(e.u64_field("bytes"), Some(211));
        assert_eq!(e.field("ok"), Some(&Value::Bool(true)));
        assert_eq!(e.field("missing"), None);
        assert_eq!(e.u64_field("delta"), None); // negative
    }

    #[test]
    fn json_roundtrip() {
        let e = sample();
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::U64(5).to_string(), "5");
        assert_eq!(Value::Str("x".into()).to_string(), "x");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::I64(-2).to_string(), "-2");
    }
}
