//! Property tests for the quantile sketch's merge algebra.
//!
//! The serving and batch drivers rely on per-worker private registries
//! that merge into the caller's at join — in whatever order the workers
//! happen to finish. Those drivers promise bit-identical metrics across
//! runs and worker counts, which holds only if [`HistogramSnapshot::absorb`]
//! is associative, commutative, and exactly count/sum-preserving over
//! arbitrary partitions of the observation stream. Pin that algebra here.

use peertrust_telemetry::HistogramSnapshot;
use proptest::prelude::*;

/// Bounded so exact sums cannot overflow `u64` even at max vec length.
const VALUE: std::ops::Range<u64> = 0..(1u64 << 40);

fn sketch_of(values: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::empty();
    for &v in values {
        h.observe(v);
    }
    h
}

fn merged<'a>(parts: impl IntoIterator<Item = &'a HistogramSnapshot>) -> HistogramSnapshot {
    let mut acc = HistogramSnapshot::empty();
    for p in parts {
        acc.absorb(p);
    }
    acc
}

/// Full structural equality: counts, sums, extrema, and every bucket.
fn assert_same(a: &HistogramSnapshot, b: &HistogramSnapshot) {
    assert_eq!(a.count, b.count, "count");
    assert_eq!(a.sum, b.sum, "sum");
    assert_eq!(a.min, b.min, "min");
    assert_eq!(a.max, b.max, "max");
    assert_eq!(a.buckets, b.buckets, "buckets");
}

proptest! {
    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): worker join order cannot matter.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(VALUE.clone(), 0..64),
        b in proptest::collection::vec(VALUE.clone(), 0..64),
        c in proptest::collection::vec(VALUE.clone(), 0..64),
    ) {
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));
        let left = {
            let mut ab = sa.clone();
            ab.absorb(&sb);
            ab.absorb(&sc);
            ab
        };
        let right = {
            let mut bc = sb.clone();
            bc.absorb(&sc);
            let mut a_bc = sa.clone();
            a_bc.absorb(&bc);
            a_bc
        };
        assert_same(&left, &right);
    }

    /// a ⊕ b == b ⊕ a.
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(VALUE.clone(), 0..64),
        b in proptest::collection::vec(VALUE.clone(), 0..64),
    ) {
        let (sa, sb) = (sketch_of(&a), sketch_of(&b));
        let mut ab = sa.clone();
        ab.absorb(&sb);
        let mut ba = sb.clone();
        ba.absorb(&sa);
        assert_same(&ab, &ba);
    }

    /// Merging any partition of a stream equals sketching the stream
    /// whole — and count/sum/min/max are exact (never sketched).
    #[test]
    fn merge_over_any_partition_matches_the_whole_stream(
        values in proptest::collection::vec(VALUE.clone(), 1..256),
        cuts in proptest::collection::vec(0usize..10_000, 0..6),
    ) {
        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % values.len()).collect();
        bounds.push(0);
        bounds.push(values.len());
        bounds.sort_unstable();
        let parts: Vec<HistogramSnapshot> = bounds
            .windows(2)
            .map(|w| sketch_of(&values[w[0]..w[1]]))
            .collect();
        let combined = merged(&parts);
        let whole = sketch_of(&values);
        assert_same(&combined, &whole);
        // The exact fields track the raw stream, not the buckets.
        prop_assert_eq!(combined.count, values.len() as u64);
        prop_assert_eq!(combined.sum, values.iter().sum::<u64>());
        prop_assert_eq!(combined.min, *values.iter().min().unwrap());
        prop_assert_eq!(combined.max, *values.iter().max().unwrap());
    }

    /// The empty sketch is the identity on both sides.
    #[test]
    fn empty_is_the_identity(values in proptest::collection::vec(VALUE.clone(), 0..128)) {
        let s = sketch_of(&values);
        let mut left = HistogramSnapshot::empty();
        left.absorb(&s);
        assert_same(&left, &s);
        let mut right = s.clone();
        right.absorb(&HistogramSnapshot::empty());
        assert_same(&right, &s);
    }

    /// Quantiles read from a merged sketch equal quantiles read from the
    /// whole-stream sketch (they share bucket structure exactly).
    #[test]
    fn quantiles_are_merge_invariant(
        a in proptest::collection::vec(0u64..1_000_000, 1..128),
        b in proptest::collection::vec(0u64..1_000_000, 1..128),
    ) {
        let mut combined = sketch_of(&a);
        combined.absorb(&sketch_of(&b));
        let whole: Vec<u64> = a.iter().chain(&b).copied().collect();
        let whole = sketch_of(&whole);
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(combined.quantile(q), whole.quantile(q));
        }
    }
}
