//! `peertrust` — command-line front end for the PeerTrust policy language
//! and negotiation runtime.
//!
//! Policy files use the paper's labeled-program layout: each peer's rules
//! under a `"Peer Name":` heading. Issuers appearing in `signedBy` clauses
//! are auto-registered in the simulated CA, and their signed rules are
//! minted for the holding peer.
//!
//! ```text
//! peertrust check <file>
//!     Parse the file, report peers/rules/credentials or a parse error.
//!
//! peertrust lint <file>
//!     Static policy analysis: deadlocked release cycles, unreleasable
//!     credentials, unsafe rules, unknown authorities/issuers.
//!
//! peertrust query <file> <peer> <goal>
//!     Run a local query against one peer's knowledge base and print each
//!     answer with its proof tree.
//!
//! peertrust negotiate <file> <requester> <responder> <goal>
//!            [--strategy parsimonious|eager] [--trace] [--explain-failure]
//!     Run a trust negotiation and print the outcome, the disclosure
//!     sequence, and optionally the message trace or a counterfactual
//!     failure analysis.
//! ```

use peertrust::core::{PeerId, Rule, Sym};
use peertrust::crypto::KeyRegistry;
use peertrust::engine::{explain_with_rules, Solver};
use peertrust::negotiation::{analyze_failure, NegotiationPeer, PeerMap, SessionConfig, Strategy};
use peertrust::net::{NegotiationId, SimNetwork};
use peertrust::parser::{parse_labeled_program, parse_literal};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("negotiate") => cmd_negotiate(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
peertrust — PeerTrust policy language & trust negotiation runtime

USAGE:
  peertrust check <file>
  peertrust lint <file>
  peertrust query <file> <peer> <goal>
  peertrust negotiate <file> <requester> <responder> <goal>
            [--strategy parsimonious|eager] [--trace] [--explain-failure] [--json]

Policy files use labeled programs:

  \"E-Learn\":
    resource(X) $ true <- student(X) @ \"UIUC\" @ X.
  Alice:
    student(\"Alice\") @ \"UIUC\" signedBy [\"UIUC\"].
    student(X) @ Y $ true <-_true student(X) @ Y.
";

/// Parse a labeled policy file into peers backed by a shared simulated CA.
fn load_peers(path: &str) -> Result<(PeerMap, KeyRegistry), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let labeled = parse_labeled_program(&src).map_err(|e| format!("{path}: {e}"))?;

    // Auto-register every issuer mentioned anywhere.
    let registry = KeyRegistry::new();
    let mut issuers: Vec<Sym> = Vec::new();
    for (_, rules) in &labeled {
        for rule in rules {
            for issuer in &rule.signed_by {
                if !issuers.contains(issuer) {
                    issuers.push(*issuer);
                }
            }
        }
    }
    for (i, issuer) in issuers.iter().enumerate() {
        registry.register_derived(PeerId(*issuer), 0xC11 + i as u64);
    }

    let mut peers = PeerMap::new();
    for (peer_id, rules) in labeled {
        let mut peer = NegotiationPeer::new(peer_id.name(), registry.clone());
        for rule in rules {
            load_rule(&mut peer, rule)?;
        }
        peers.insert(peer);
    }
    Ok((peers, registry))
}

fn load_rule(peer: &mut NegotiationPeer, rule: Rule) -> Result<(), String> {
    if rule.signed_by.is_empty() {
        peer.add_rule(rule);
        Ok(())
    } else {
        peer.mint(rule.clone())
            .map(|_| ())
            .map_err(|e| format!("minting `{rule}`: {e}"))
    }
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("usage: peertrust check <file>".into());
    };
    let (peers, _registry) = load_peers(path)?;
    println!("{path}: OK");
    for id in peers.ids() {
        let peer = peers.get(id).expect("listed peer exists");
        let rules = peer.kb.len();
        let creds = peer.disclosable_signed_rules().count();
        let preds = peer.kb.predicates().len();
        println!("  {id}: {rules} rules ({creds} signed), {preds} predicates");
    }
    Ok(())
}

fn cmd_lint(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("usage: peertrust lint <file>".into());
    };
    let (peers, _registry) = load_peers(path)?;
    // Every auto-registered issuer is "known" for the lint.
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let labeled = parse_labeled_program(&src).map_err(|e| format!("{path}: {e}"))?;
    let mut issuers = Vec::new();
    for (_, rules) in &labeled {
        for rule in rules {
            for issuer in rule.issuers() {
                if !issuers.contains(&issuer) {
                    issuers.push(issuer);
                }
            }
        }
    }
    let report = peertrust::negotiation::analyze(&peers, &issuers);
    if report.is_clean() {
        println!("{path}: clean (no findings)");
        return Ok(());
    }
    for f in &report.findings {
        println!("{}: {}", f.severity(), f);
    }
    if !report.errors().is_empty() {
        return Err(format!("{} error(s) found", report.errors().len()));
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let [path, peer_name, goal_src] = args else {
        return Err("usage: peertrust query <file> <peer> <goal>".into());
    };
    let (peers, _registry) = load_peers(path)?;
    let peer_id = PeerId::new(peer_name);
    let peer = peers
        .get(peer_id)
        .ok_or_else(|| format!("no peer named `{peer_name}` in {path}"))?;
    let goal = parse_literal(goal_src).map_err(|e| format!("goal: {e}"))?;

    let mut solver = Solver::new(&peer.kb, peer_id);
    let solutions = solver.solve(std::slice::from_ref(&goal));
    if solutions.is_empty() {
        println!("no (0 answers)");
        return Ok(());
    }
    println!("yes ({} answer(s))", solutions.len());
    for (i, sol) in solutions.iter().enumerate() {
        println!("\nanswer {}: {}", i + 1, sol.proofs[0].goal);
        print!("{}", explain_with_rules(&sol.proofs[0], &peer.kb));
    }
    Ok(())
}

fn cmd_negotiate(args: &[String]) -> Result<(), String> {
    let mut positional: Vec<&String> = Vec::new();
    let mut strategy = Strategy::Parsimonious;
    let mut trace = false;
    let mut explain_fail = false;
    let mut json_out = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--strategy" => {
                let v = it.next().ok_or("--strategy needs a value")?;
                strategy = match v.as_str() {
                    "parsimonious" => Strategy::Parsimonious,
                    "eager" => Strategy::Eager,
                    other => return Err(format!("unknown strategy `{other}`")),
                };
            }
            "--trace" => trace = true,
            "--explain-failure" => explain_fail = true,
            "--json" => json_out = true,
            _ => positional.push(arg),
        }
    }
    let [path, requester, responder, goal_src] = positional[..] else {
        return Err(
            "usage: peertrust negotiate <file> <requester> <responder> <goal> [options]".into(),
        );
    };

    let (mut peers, _registry) = load_peers(path)?;
    let requester_id = PeerId::new(requester);
    let responder_id = PeerId::new(responder);
    for (role, id) in [("requester", requester_id), ("responder", responder_id)] {
        if peers.get(id).is_none() {
            return Err(format!("no peer named `{id}` for {role} in {path}"));
        }
    }
    let goal = parse_literal(goal_src).map_err(|e| format!("goal: {e}"))?;

    let mut net = SimNetwork::new(0xC11);
    if trace {
        net = net.with_trace();
    }
    let outcome = strategy.run(
        &mut peers,
        &mut net,
        NegotiationId(1),
        requester_id,
        responder_id,
        goal.clone(),
    );

    if json_out {
        // Machine-readable audit record of the whole negotiation.
        println!(
            "{}",
            serde_json::to_string_pretty(&outcome)
                .map_err(|e| format!("serializing outcome: {e}"))?
        );
        return Ok(());
    }
    println!(
        "negotiation: {}",
        if outcome.success {
            "SUCCESS"
        } else {
            "FAILURE"
        }
    );
    for g in &outcome.granted {
        println!("  granted: {g}");
    }
    println!(
        "  strategy={} messages={} bytes={} queries={} credentials={} rounds={}",
        strategy,
        outcome.messages,
        outcome.bytes,
        outcome.queries,
        outcome.credential_count(),
        outcome.rounds
    );
    if !outcome.disclosures.is_empty() {
        println!("\ndisclosure sequence:");
        for d in &outcome.disclosures {
            println!(
                "  #{:<2} {:>12} -> {:<12} {}",
                d.seq,
                d.from,
                d.to,
                d.item.kind()
            );
        }
    }
    if trace {
        println!("\nmessage trace:");
        for ev in net.trace() {
            println!("  t{:<4} {}", ev.at, ev.message);
        }
    }
    if !outcome.success {
        if !outcome.refusals.is_empty() {
            println!("\nrefusals:");
            for r in &outcome.refusals {
                println!(
                    "  {} refused `{}` to {} ({:?})",
                    r.peer, r.goal, r.requester, r.reason
                );
            }
        }
        if explain_fail {
            println!("\ncounterfactual failure analysis:");
            let path_owned = path.clone();
            let analysis = analyze_failure(
                move || load_peers(&path_owned).expect("file already parsed once").0,
                SessionConfig::default(),
                requester_id,
                responder_id,
                &goal,
                &outcome,
            );
            if analysis.unconditional {
                println!("  no single release override rescues this negotiation");
            }
            for a in &analysis.refusals {
                println!(
                    "  {} `{}`: {}",
                    a.refusal.peer,
                    a.refusal.goal,
                    if a.critical {
                        "CRITICAL — releasing this item alone would succeed"
                    } else {
                        "contributory"
                    }
                );
            }
        }
    }
    Ok(())
}
