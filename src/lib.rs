//! # PeerTrust
//!
//! A complete Rust implementation of **PeerTrust** — *"Automated Trust
//! Negotiation for Peers on the Semantic Web"* (Nejdl, Olmedilla, Winslett,
//! 2004): a policy language based on distributed logic programs plus a
//! run-time system that negotiates trust between strangers by iterative,
//! bilateral disclosure of digital credentials.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — terms, literals with authority chains, contexts
//!   (release policies), rules, knowledge bases, unification.
//! * [`parser`] — the PeerTrust concrete syntax.
//! * [`crypto`] — simulated PKI (SHA-256/HMAC signatures, key registry,
//!   credentials, revocation).
//! * [`engine`] — SLD resolution and forward-chaining inference.
//! * [`net`] — simulated peer-to-peer message substrate.
//! * [`negotiation`] — the trust-negotiation runtime: strategies, release
//!   policy enforcement, UniPro policy protection, delegation.
//! * [`rdf`] — the Edutella-style RDF metadata substrate (N-Triples,
//!   triple store, KB mapping).
//! * [`scenarios`] — the paper's worked scenarios and synthetic workload
//!   generators.
//! * [`telemetry`] — zero-dependency tracing spans, per-peer metrics, and
//!   JSONL timeline export for negotiations (see README "Observability").
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for a complete negotiation between Alice and
//! E-Learn, built from the exact policies in the paper's Section 4.1.

pub use peertrust_core as core;
pub use peertrust_crypto as crypto;
pub use peertrust_engine as engine;
pub use peertrust_negotiation as negotiation;
pub use peertrust_net as net;
pub use peertrust_parser as parser;
pub use peertrust_rdf as rdf;
pub use peertrust_scenarios as scenarios;
pub use peertrust_telemetry as telemetry;

/// One-stop prelude for applications.
pub mod prelude {
    pub use peertrust_core::prelude::*;
}
