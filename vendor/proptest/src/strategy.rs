//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Depth-bounded recursion: `recurse` receives a strategy for the
    /// current level and builds the next one. `_size` / `_branch` are
    /// accepted for API compatibility but unused.
    fn prop_recursive<S2, F>(
        self,
        levels: u32,
        _size: u32,
        _branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..levels {
            let branch = recurse(current).boxed();
            let leaf = leaf.clone();
            current = BoxedStrategy::from_fn(move |rng| {
                // Half the mass at each level goes back to leaves, so
                // expected depth stays small while max depth is bounded.
                if rng.next_u64() % 2 == 0 {
                    leaf.generate(rng)
                } else {
                    branch.generate(rng)
                }
            });
        }
        current
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::from_fn(move |rng| self.generate(rng))
    }
}

/// Type-erased, cheaply-cloneable strategy.
pub struct BoxedStrategy<T> {
    gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen_fn: Rc::clone(&self.gen_fn),
        }
    }
}

impl<T> BoxedStrategy<T> {
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy { gen_fn: Rc::new(f) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.reason);
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start.wrapping_add(rng.below(span + 1) as $ty)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// String literals act as regex-subset string strategies.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
