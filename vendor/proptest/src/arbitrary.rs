//! `any::<T>()` strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() % 2 == 0
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        char::from(b' ' + rng.below(95) as u8)
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
