//! Regex-subset string generation for `&str` strategies.
//!
//! Supported syntax — the subset the workspace's tests use:
//! literal characters, character classes `[a-z0-9_.-]` (ranges and
//! literals, `-` literal when first/last), and quantifiers `{n}`,
//! `{m,n}`, `?`, `*`, `+` (star/plus capped at 8 repetitions).

use crate::test_runner::TestRng;

struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"));
                let class = &chars[i + 1..close];
                i = close + 1;
                expand_class(class, pattern)
            }
            '\\' => {
                i += 1;
                let c = chars
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("quantifier min"),
                        n.trim().parse().expect("quantifier max"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
    assert!(!class.is_empty(), "empty character class in {pattern:?}");
    let mut out = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            assert!(lo <= hi, "inverted range in class of {pattern:?}");
            for c in lo..=hi {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(class[i]);
            i += 1;
        }
    }
    out
}

pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let n = if atom.max > atom.min {
            atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize
        } else {
            atom.min
        };
        for _ in 0..n {
            let c = atom.choices[rng.below(atom.choices.len() as u64) as usize];
            out.push(c);
        }
    }
    out
}
