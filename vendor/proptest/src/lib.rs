#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
//! Vendored proptest subset for offline builds.
//!
//! Same macro and combinator surface as proptest (for the features this
//! workspace uses), implemented as plain seeded random generation with
//! case rejection but **no shrinking** — a failing case prints its inputs
//! via the assertion message instead of minimizing them.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror so `prop::collection::vec(...)` works.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

/// Run each test function's body against `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$attr:meta])*
         fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(10).max(100);
                while __accepted < __config.cases && __attempts < __max_attempts {
                    __attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { { $body } ::core::result::Result::Ok(()) })();
                    match __result {
                        ::core::result::Result::Ok(()) => __accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg)) => {
                            ::std::panic!("proptest case failed: {}", __msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
            __l, __r, ::std::format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
}

/// Reject the current case (does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
