//! Test-runner plumbing: config, per-test RNG, and case outcomes.

/// Runner configuration (only `cases` is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// Case rejected by `prop_assume!` — generate another.
    Reject(String),
    /// Assertion failure — abort the test.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic per-test RNG (SplitMix64 seeded from the test path, or
/// from `PROPTEST_SEED` when set).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> TestRng {
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = seed.parse::<u64>() {
                return TestRng::from_seed(seed);
            }
        }
        // FNV-1a over the test path keeps runs reproducible per test.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(h)
    }

    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}
