//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Match proptest's default: None about a quarter of the time.
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `of(strategy)`: `None` sometimes, `Some(value)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
