#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
//! Vendored rand subset: a SplitMix64-based [`rngs::StdRng`], the
//! [`SeedableRng`] / [`Rng`] traits, and range sampling for the integer
//! ranges this workspace draws from. Deterministic by construction.

/// Core random source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

fn next_below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Multiply-shift rejection-free mapping is fine for simulation use.
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + next_below(rng, span) as $ty
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + next_below(rng, span + 1) as $ty
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(next_below(rng, span) as $ty)
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start.wrapping_add(next_below(rng, span + 1) as $ty)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, and plenty for simulation workloads.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}
