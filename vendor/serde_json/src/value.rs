//! A dynamically-typed JSON value, mirroring serde_json's `Value`.

use serde::Content;

/// A JSON number (integer or float).
#[derive(Clone, Debug, PartialEq)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

/// Any JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(u)) => Some(*u),
            Value::Number(Number::I64(i)) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(i)) => Some(*i),
            Value::Number(Number::U64(u)) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(f)) => Some(*f),
            Value::Number(Number::I64(i)) => Some(*i as f64),
            Value::Number(Number::U64(u)) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::I64(i)) => Content::I64(*i),
            Value::Number(Number::U64(u)) => Content::U64(*u),
            Value::Number(Number::F64(f)) => Content::F64(*f),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Value::to_content).collect()),
            Value::Object(entries) => Content::Map(
                entries
                    .iter()
                    .map(|(k, v)| (Content::Str(k.clone()), v.to_content()))
                    .collect(),
            ),
        }
    }

    fn from_content(c: Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(b),
            Content::I64(i) => Value::Number(Number::I64(i)),
            Content::U64(u) => Value::Number(Number::U64(u)),
            Content::F64(f) => Value::Number(Number::F64(f)),
            Content::Str(s) => Value::String(s),
            Content::Seq(items) => {
                Value::Array(items.into_iter().map(Value::from_content).collect())
            }
            Content::Map(entries) => Value::Object(
                entries
                    .into_iter()
                    .map(|(k, v)| {
                        let key = match k {
                            Content::Str(s) => s,
                            other => format!("{other:?}"),
                        };
                        (key, Value::from_content(v))
                    })
                    .collect(),
            ),
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_value_eq_int {
    ($($ty:ty => $as:ident),*) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                self.$as().and_then(|n| <$ty>::try_from(n).ok()) == Some(*other)
            }
        }
    )*};
}

impl_value_eq_int!(u8 => as_u64, u16 => as_u64, u32 => as_u64, u64 => as_u64, usize => as_u64,
    i8 => as_i64, i16 => as_i64, i32 => as_i64, i64 => as_i64, isize => as_i64);

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl serde::Serialize for Value {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.to_content())
    }
}

impl<'de> serde::Deserialize<'de> for Value {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Value::from_content(deserializer.deserialize_content()?))
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&crate::print::compact(&self.to_content()))
    }
}
