//! JSON rendering of a Content tree, compact and pretty.

use serde::Content;

pub(crate) fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_repr(f: f64) -> String {
    if f.is_finite() {
        let s = format!("{f}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // serde_json refuses non-finite floats; null is the closest total
        // behavior and keeps metrics export infallible.
        "null".to_string()
    }
}

fn key_string(k: &Content) -> String {
    match k {
        Content::Str(s) => s.clone(),
        Content::I64(i) => i.to_string(),
        Content::U64(u) => u.to_string(),
        Content::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

pub(crate) fn compact(c: &Content) -> String {
    let mut out = String::new();
    write_compact(&mut out, c);
    out
}

fn write_compact(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::F64(f) => out.push_str(&float_repr(*f)),
        Content::Str(s) => escape_into(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, &key_string(k));
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

pub(crate) fn pretty(c: &Content) -> String {
    let mut out = String::new();
    write_pretty(&mut out, c, 0);
    out
}

fn write_pretty(out: &mut String, c: &Content, indent: usize) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                escape_into(out, &key_string(k));
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}
