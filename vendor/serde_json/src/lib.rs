#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
//! Vendored JSON serializer/deserializer over the offline serde subset.
//!
//! Output format matches serde_json: compact (`{"a":1}`) from
//! [`to_string`], 2-space-indented pretty form (`"a": 1`) from
//! [`to_string_pretty`].

use serde::{Content, ContentError};

mod parse;
mod print;
mod value;

pub use value::{Number, Value};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl From<ContentError> for Error {
    fn from(e: ContentError) -> Error {
        Error::new(e.0)
    }
}

fn content_of<T: ?Sized + serde::Serialize>(value: &T) -> Result<Content, Error> {
    serde::to_content(value).map_err(Error::from)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: ?Sized + serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(print::compact(&content_of(value)?))
}

/// Serialize to a pretty JSON string (2-space indent).
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(print::pretty(&content_of(value)?))
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: ?Sized + serde::Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize from a JSON string.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let content = parse::parse(s)?;
    T::deserialize(content).map_err(Error::from)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}
