//! Recursive-descent JSON parser producing a Content tree.

use crate::Error;
use serde::Content;

pub(crate) fn parse(s: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Content, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new("recursion depth exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    entries.push((Content::Str(key), value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs: combine when a high surrogate
                            // is followed by \uDC00-\uDFFF.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                let rest = &self.bytes[self.pos + 5..];
                                if rest.len() >= 6 && rest[0] == b'\\' && rest[1] == b'u' {
                                    let lo_hex = std::str::from_utf8(&rest[2..6])
                                        .map_err(|_| Error::new("invalid \\u escape"))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| Error::new("invalid \\u escape"))?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        self.pos += 6;
                                        let combined =
                                            0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                    let c = s.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(Error::new("control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number chars");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}
