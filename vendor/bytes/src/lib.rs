#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
//! Vendored subset of `bytes`: immutable [`Bytes`], growable [`BytesMut`]
//! with front consumption, and the [`Buf`] / [`BufMut`] trait slices this
//! workspace uses. Backed by plain `Vec<u8>` — no refcounted slicing.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

/// Growable byte buffer supporting front consumption via [`Buf::advance`]
/// and [`BytesMut::split_to`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    start: usize,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
            start: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }

    pub fn freeze(self) -> Bytes {
        let mut buf = self.buf;
        buf.drain(..self.start);
        Bytes::from(buf)
    }

    /// Remove and return the first `n` bytes.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of bounds");
        let front = self.buf[self.start..self.start + n].to_vec();
        self.start += n;
        self.compact();
        BytesMut {
            buf: front,
            start: 0,
        }
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Drop consumed front storage once it dominates the buffer.
    fn compact(&mut self) {
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf[self.start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut {
            buf: s.to_vec(),
            start: 0,
        }
    }
}

/// Read cursor over a byte buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
        self.compact();
    }
}

/// Write cursor over a byte buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}
