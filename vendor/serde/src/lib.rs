#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
//! Vendored subset of serde for offline builds.
//!
//! Same trait names and call-site signatures as serde proper, but the data
//! model is a single self-describing [`Content`] tree instead of the full
//! visitor machinery. `serde_json` (also vendored) renders and parses that
//! tree. Only the surface actually used by this workspace is provided.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree both sides of the bridge speak.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(Content, Content)>),
}

/// Error used by the in-memory [`Content`] serializer/deserializer.
#[derive(Clone, Debug)]
pub struct ContentError(pub String);

impl std::fmt::Display for ContentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ContentError {}

impl ser::Error for ContentError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

impl de::Error for ContentError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

/// Serialize any value into a [`Content`] tree.
pub fn to_content<T: ?Sized + Serialize>(value: &T) -> Result<Content, ContentError> {
    value.serialize(ser::ContentSerializer)
}
