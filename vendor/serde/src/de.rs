//! Deserialization half of the vendored serde subset.

use crate::{Content, ContentError};

/// Error constraint every deserializer error type must satisfy.
pub trait Error: Sized + std::error::Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// A source of serialized values; one required method, mirroring
/// [`crate::Serializer::serialize_content`].
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// A value that can be deserialized.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Owned-deserializable helper (all our types are owned).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

impl<'de> Deserializer<'de> for Content {
    type Error = ContentError;

    fn deserialize_content(self) -> Result<Content, ContentError> {
        Ok(self)
    }
}

/// Deserialize a value out of a [`Content`] tree.
pub fn from_content<T: DeserializeOwned>(content: Content) -> Result<T, ContentError> {
    T::deserialize(content)
}

fn type_name(content: &Content) -> &'static str {
    match content {
        Content::Null => "null",
        Content::Bool(_) => "bool",
        Content::I64(_) => "integer",
        Content::U64(_) => "integer",
        Content::F64(_) => "float",
        Content::Str(_) => "string",
        Content::Seq(_) => "sequence",
        Content::Map(_) => "map",
    }
}

fn unexpected(content: &Content, expected: &str) -> ContentError {
    ContentError(format!("expected {expected}, found {}", type_name(content)))
}

/// Pull `key` out of a struct's field map, deserializing its value.
/// A missing field is accepted only if `T` deserializes from null
/// (i.e. `Option`), mirroring serde's missing-field behavior closely
/// enough for this workspace.
pub fn take_field<T: DeserializeOwned>(
    fields: &mut Vec<(Content, Content)>,
    key: &str,
) -> Result<T, ContentError> {
    let pos = fields
        .iter()
        .position(|(k, _)| matches!(k, Content::Str(s) if s == key));
    match pos {
        Some(i) => {
            let (_, v) = fields.remove(i);
            T::deserialize(v).map_err(|e| ContentError(format!("field `{key}`: {e}")))
        }
        None => T::deserialize(Content::Null)
            .map_err(|_| ContentError(format!("missing field `{key}`"))),
    }
}

/// Expect a map (struct body) and return its entries.
pub fn expect_map(content: Content) -> Result<Vec<(Content, Content)>, ContentError> {
    match content {
        Content::Map(m) => Ok(m),
        other => Err(unexpected(&other, "map")),
    }
}

/// Expect a sequence of exactly `len` elements.
pub fn expect_seq(content: Content, len: usize) -> Result<Vec<Content>, ContentError> {
    match content {
        Content::Seq(s) if s.len() == len => Ok(s),
        Content::Seq(s) => Err(ContentError(format!(
            "expected sequence of {len} elements, found {}",
            s.len()
        ))),
        other => Err(unexpected(&other, "sequence")),
    }
}

impl<'de> Deserialize<'de> for Content {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_content()
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => Ok(s),
            other => Err(Error::custom(unexpected(&other, "string"))),
        }
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(b) => Ok(b),
            other => Err(Error::custom(unexpected(&other, "bool"))),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(unexpected(&other, "single-char string"))),
        }
    }
}

fn content_i64(content: &Content) -> Option<i64> {
    match content {
        Content::I64(i) => Some(*i),
        Content::U64(u) => i64::try_from(*u).ok(),
        _ => None,
    }
}

fn content_u64(content: &Content) -> Option<u64> {
    match content {
        Content::U64(u) => Some(*u),
        Content::I64(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

macro_rules! deserialize_int {
    ($($ty:ty : $via:ident),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let c = deserializer.deserialize_content()?;
                $via(&c)
                    .and_then(|v| <$ty>::try_from(v).ok())
                    .ok_or_else(|| Error::custom(unexpected(&c, stringify!($ty))))
            }
        }
    )*};
}

deserialize_int! {
    i8: content_i64, i16: content_i64, i32: content_i64, i64: content_i64,
    isize: content_i64,
    u8: content_u64, u16: content_u64, u32: content_u64, u64: content_u64,
    usize: content_u64,
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::F64(f) => Ok(f),
            Content::I64(i) => Ok(i as f64),
            Content::U64(u) => Ok(u as f64),
            other => Err(Error::custom(unexpected(&other, "float"))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(()),
            other => Err(Error::custom(unexpected(&other, "null"))),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some).map_err(Error::custom),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(items) => items
                .into_iter()
                .map(|c| T::deserialize(c).map_err(Error::custom))
                .collect(),
            other => Err(Error::custom(unexpected(&other, "sequence"))),
        }
    }
}

impl<'de, T: DeserializeOwned, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items: Vec<T> = Vec::deserialize(deserializer)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of {N} elements, found {len}")))
    }
}

macro_rules! deserialize_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<'de, $($name: DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                let c = deserializer.deserialize_content()?;
                const LEN: usize = [$(stringify!($name)),+].len();
                let items = expect_seq(c, LEN).map_err(Error::custom)?;
                let mut iter = items.into_iter();
                Ok(($(
                    $name::deserialize(iter.next().expect("length checked"))
                        .map_err(Error::custom)?,
                )+))
            }
        }
    )*};
}

deserialize_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

fn map_entries<K, V, E>(content: Content) -> Result<Vec<(K, V)>, E>
where
    K: DeserializeOwned,
    V: DeserializeOwned,
    E: Error,
{
    match content {
        Content::Map(entries) => entries
            .into_iter()
            .map(|(k, v)| {
                Ok((
                    K::deserialize(k).map_err(Error::custom)?,
                    V::deserialize(v).map_err(Error::custom)?,
                ))
            })
            .collect(),
        other => Err(Error::custom(unexpected(&other, "map"))),
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::HashMap<K, V>
where
    K: DeserializeOwned + std::hash::Hash + Eq,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let entries: Vec<(K, V)> = map_entries(deserializer.deserialize_content()?)?;
        Ok(entries.into_iter().collect())
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: DeserializeOwned + Ord,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let entries: Vec<(K, V)> = map_entries(deserializer.deserialize_content()?)?;
        Ok(entries.into_iter().collect())
    }
}
