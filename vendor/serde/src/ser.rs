//! Serialization half of the vendored serde subset.

use crate::{Content, ContentError};

/// Error constraint every serializer error type must satisfy.
pub trait Error: Sized + std::error::Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// A value that can be serialized.
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A sink for serialized values. One required method: everything funnels
/// through a [`Content`] tree.
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;

    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Bool(v))
    }
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::I64(v.into()))
    }
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::I64(v.into()))
    }
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::I64(v.into()))
    }
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::I64(v))
    }
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::U64(v.into()))
    }
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::U64(v.into()))
    }
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::U64(v.into()))
    }
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::U64(v))
    }
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::F64(v.into()))
    }
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::F64(v))
    }
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Str(v.to_string()))
    }
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Str(v.to_owned()))
    }
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Null)
    }
    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Null)
    }
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        let c = crate::to_content(value).map_err(Error::custom)?;
        self.serialize_content(c)
    }
}

/// Serializer that materializes the [`Content`] tree itself.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = ContentError;

    fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
        Ok(content)
    }
}

macro_rules! serialize_prim {
    ($($ty:ty => $method:ident),* $(,)?) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    )*};
}

serialize_prim! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: ?Sized + Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<'a, S, T, I>(serializer: S, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    T: Serialize + 'a,
    I: IntoIterator<Item = &'a T>,
{
    let mut out = Vec::new();
    for item in iter {
        out.push(crate::to_content(item).map_err(Error::custom)?);
    }
    serializer.serialize_content(Content::Seq(out))
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter())
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(crate::to_content(&self.$idx).map_err(Error::custom)?,)+
                ];
                serializer.serialize_content(Content::Seq(items))
            }
        }
    )*};
}

serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

fn serialize_map_iter<'a, S, K, V, I>(serializer: S, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: IntoIterator<Item = (&'a K, &'a V)>,
{
    let mut out = Vec::new();
    for (k, v) in iter {
        out.push((
            crate::to_content(k).map_err(Error::custom)?,
            crate::to_content(v).map_err(Error::custom)?,
        ));
    }
    serializer.serialize_content(Content::Map(out))
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.iter())
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.iter())
    }
}

impl Serialize for Content {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.clone())
    }
}
