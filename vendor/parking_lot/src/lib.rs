#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
//! Vendored parking_lot subset: non-poisoning `Mutex` / `RwLock` built on
//! `std::sync`. A poisoned std lock is recovered transparently, matching
//! parking_lot's no-poisoning semantics.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
