#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
//! Vendored crossbeam facade: MPMC-capable channels over `std::sync::mpsc`
//! with a mutex-shared receiver, exposing the subset of
//! `crossbeam::channel` this workspace uses.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, TryRecvError};

    /// Sending half; cloneable like crossbeam's.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Sending failed because the channel is disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half; cloneable (receivers share one queue, like
    /// crossbeam's MPMC channels).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.lock().unwrap_or_else(|e| e.into_inner()).recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.lock().unwrap_or_else(|e| e.into_inner()).try_recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}
