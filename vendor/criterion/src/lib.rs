#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
//! Vendored criterion subset: same macro/builder surface, simple
//! wall-clock measurement (median of timed samples, printed to stdout)
//! instead of criterion's statistical machinery.

use std::time::{Duration, Instant};

/// Opaque value barrier, stopping the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup; measurement here is identical for
/// all variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation (recorded, echoed in output).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Two-part benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs closures and accumulates one timed sample per call.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_count: usize) -> Bencher {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            iters_per_sample: 1,
        }
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and pick an iteration count targeting ~1ms per sample.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        self.iters_per_sample = per_sample as u64;
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iters_per_sample = 1;
        for _ in 0..self.samples.capacity() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iters_per_sample = 1;
        for _ in 0..self.samples.capacity() {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let extra = match throughput {
            Some(Throughput::Bytes(b)) => {
                format!(
                    "  {:.1} MiB/s",
                    b as f64 / (median / 1e9) / (1 << 20) as f64
                )
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:.0} elem/s", n as f64 / (median / 1e9))
            }
            None => String::new(),
        };
        println!(
            "{name:<50} median {:>12}  mean {:>12}{extra}",
            format_nanos(median),
            format_nanos(mean)
        );
    }
}

fn format_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = t.into();
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    pub fn configure_from_args(mut self) -> Self {
        if self.sample_size == 0 {
            self.sample_size = 20;
        }
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn effective_sample_size(&self) -> usize {
        if self.sample_size == 0 {
            20
        } else {
            self.sample_size
        }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.effective_sample_size();
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.effective_sample_size());
        f(&mut b);
        b.report(&id.to_string(), None);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.effective_sample_size());
        f(&mut b, input);
        b.report(&id.to_string(), None);
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
