#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde subset. Parses the item's token stream by hand (no syn /
//! quote) and emits impls against `::serde`'s Content-based data model.
//!
//! Supported shapes — everything this workspace derives on:
//! * unit / tuple / named-field structs (non-generic)
//! * enums with unit, tuple, and named-field variants (non-generic)
//!
//! JSON encodings match serde's external tagging: newtype structs are
//! transparent, unit variants are strings, other variants are
//! single-entry maps.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }

    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                None => Shape::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                other => return Err(format!("unexpected token after struct name: {other:?}")),
            };
            Ok(Item::Struct { name, shape })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Field names of a named-field struct or struct variant.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Number of fields in a tuple struct / tuple variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for tok in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream())?)
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip to the comma separating variants (covers discriminants).
        while let Some(tok) = tokens.get(i) {
            i += 1;
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    Ok(variants)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------- Serialize

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let (name, body) = match &item {
        Item::Struct { name, shape } => (name, serialize_struct_body(shape)),
        Item::Enum { name, variants } => (name, serialize_enum_body(name, variants)),
    };
    let out = format!(
        "impl ::serde::ser::Serialize for {name} {{\n\
         fn serialize<S: ::serde::ser::Serializer>(&self, serializer: S)\n\
         -> ::core::result::Result<S::Ok, S::Error> {{\n{body}\n}}\n}}"
    );
    out.parse().unwrap()
}

/// `to_content(expr)` with the error converted to `S::Error`.
fn ser_field(expr: &str) -> String {
    format!(
        "match ::serde::to_content({expr}) {{\n\
         ::core::result::Result::Ok(c) => c,\n\
         ::core::result::Result::Err(e) => return ::core::result::Result::Err(\n\
             <S::Error as ::serde::ser::Error>::custom(e)),\n}}"
    )
}

fn named_fields_to_map(fields: &[String], prefix: &str) -> String {
    let mut s = String::from(
        "let mut __map: ::std::vec::Vec<(::serde::Content, ::serde::Content)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        s.push_str(&format!(
            "__map.push((::serde::Content::Str(::std::string::String::from({f:?})), {}));\n",
            ser_field(&format!("&{prefix}{f}"))
        ));
    }
    s
}

fn serialize_struct_body(shape: &Shape) -> String {
    match shape {
        Shape::Unit => {
            "::serde::ser::Serializer::serialize_content(serializer, ::serde::Content::Null)"
                .to_string()
        }
        // Newtype structs are transparent, matching serde.
        Shape::Tuple(1) => format!(
            "let __c = {};\n\
             ::serde::ser::Serializer::serialize_content(serializer, __c)",
            ser_field("&self.0")
        ),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n).map(|i| ser_field(&format!("&self.{i}"))).collect();
            format!(
                "let __seq = ::std::vec![{}];\n\
                 ::serde::ser::Serializer::serialize_content(serializer, \
                 ::serde::Content::Seq(__seq))",
                items.join(", ")
            )
        }
        Shape::Named(fields) => format!(
            "{}::serde::ser::Serializer::serialize_content(serializer, \
             ::serde::Content::Map(__map))",
            named_fields_to_map(fields, "self.")
        ),
    }
}

fn serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            Shape::Unit => arms.push_str(&format!(
                "{name}::{vname} => ::serde::ser::Serializer::serialize_content(serializer, \
                 ::serde::Content::Str(::std::string::String::from({vname:?}))),\n"
            )),
            Shape::Tuple(1) => arms.push_str(&format!(
                "{name}::{vname}(__f0) => {{\n\
                 let __c = {};\n\
                 ::serde::ser::Serializer::serialize_content(serializer, ::serde::Content::Map(\
                 ::std::vec![(::serde::Content::Str(::std::string::String::from({vname:?})), __c)]))\n\
                 }},\n",
                ser_field("__f0")
            )),
            Shape::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let items: Vec<String> = binders.iter().map(|b| ser_field(b)).collect();
                arms.push_str(&format!(
                    "{name}::{vname}({}) => {{\n\
                     let __seq = ::std::vec![{}];\n\
                     ::serde::ser::Serializer::serialize_content(serializer, ::serde::Content::Map(\
                     ::std::vec![(::serde::Content::Str(::std::string::String::from({vname:?})), \
                     ::serde::Content::Seq(__seq))]))\n\
                     }},\n",
                    binders.join(", "),
                    items.join(", ")
                ))
            }
            Shape::Named(fields) => {
                let binders = fields.join(", ");
                arms.push_str(&format!(
                    "{name}::{vname} {{ {binders} }} => {{\n\
                     {}\
                     ::serde::ser::Serializer::serialize_content(serializer, ::serde::Content::Map(\
                     ::std::vec![(::serde::Content::Str(::std::string::String::from({vname:?})), \
                     ::serde::Content::Map(__map))]))\n\
                     }},\n",
                    named_fields_to_map(fields, "")
                ))
            }
        }
    }
    format!("match self {{\n{arms}\n}}")
}

// -------------------------------------------------------------- Deserialize

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let (name, body) = match &item {
        Item::Struct { name, shape } => (name, deserialize_struct_body(name, shape)),
        Item::Enum { name, variants } => (name, deserialize_enum_body(name, variants)),
    };
    let out = format!(
        "impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: ::serde::de::Deserializer<'de>>(deserializer: D)\n\
         -> ::core::result::Result<Self, D::Error> {{\n\
         let __content = ::serde::de::Deserializer::deserialize_content(deserializer)?;\n\
         {body}\n}}\n}}"
    );
    out.parse().unwrap()
}

/// `Err(D::Error::custom(e))` conversion helper, as a suffix on a Result.
const MAP_ERR: &str = ".map_err(|e| <D::Error as ::serde::de::Error>::custom(e))?";

fn named_fields_from_map(type_path: &str, fields: &[String]) -> String {
    let mut inits = String::new();
    for f in fields {
        inits.push_str(&format!(
            "{f}: ::serde::de::take_field(&mut __fields, {f:?}){MAP_ERR},\n"
        ));
    }
    format!(
        "let mut __fields = ::serde::de::expect_map(__content){MAP_ERR};\n\
         ::core::result::Result::Ok({type_path} {{\n{inits}}})"
    )
}

fn tuple_from_seq(type_path: &str, n: usize) -> String {
    if n == 1 {
        // Newtype structs are transparent, matching serde.
        return format!(
            "::core::result::Result::Ok({type_path}(\
             ::serde::de::from_content(__content){MAP_ERR}))"
        );
    }
    let mut items = String::new();
    for _ in 0..n {
        items.push_str(&format!(
            "::serde::de::from_content(__iter.next().expect(\"length checked\")){MAP_ERR},\n"
        ));
    }
    format!(
        "let __seq = ::serde::de::expect_seq(__content, {n}){MAP_ERR};\n\
         let mut __iter = __seq.into_iter();\n\
         ::core::result::Result::Ok({type_path}({items}))"
    )
}

fn deserialize_struct_body(name: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => format!(
            "match __content {{\n\
             ::serde::Content::Null => ::core::result::Result::Ok({name}),\n\
             _ => ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
             \"expected null for unit struct\")),\n}}"
        ),
        Shape::Tuple(n) => tuple_from_seq(name, *n),
        Shape::Named(fields) => named_fields_from_map(name, fields),
    }
}

/// Variant payload deserialization, with `__content` holding the payload.
fn variant_payload(name: &str, v: &Variant) -> String {
    let path = format!("{name}::{}", v.name);
    match &v.shape {
        Shape::Unit => format!("{{ let _ = __content; ::core::result::Result::Ok({path}) }}"),
        Shape::Tuple(n) => format!("{{ {} }}", tuple_from_seq(&path, *n)),
        Shape::Named(fields) => format!("{{ {} }}", named_fields_from_map(&path, fields)),
    }
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    for v in variants {
        if matches!(v.shape, Shape::Unit) {
            unit_arms.push_str(&format!(
                "{:?} => ::core::result::Result::Ok({name}::{}),\n",
                v.name, v.name
            ));
        }
    }
    let mut payload_arms = String::new();
    for v in variants {
        payload_arms.push_str(&format!("{:?} => {},\n", v.name, variant_payload(name, v)));
    }
    format!(
        "match __content {{\n\
         ::serde::Content::Str(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         __other => ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\n\
             ::std::format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n\
         }},\n\
         ::serde::Content::Map(mut __m) if __m.len() == 1 => {{\n\
         let (__k, __content) = __m.pop().expect(\"length checked\");\n\
         let __k = match __k {{\n\
             ::serde::Content::Str(s) => s,\n\
             _ => return ::core::result::Result::Err(\
                 <D::Error as ::serde::de::Error>::custom(\"variant key must be a string\")),\n\
         }};\n\
         match __k.as_str() {{\n\
         {payload_arms}\
         __other => ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\n\
             ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
         }}\n\
         }},\n\
         __other => ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\n\
             ::std::format!(\"expected string or single-entry map for enum {name}\"))),\n\
         }}"
    )
}
