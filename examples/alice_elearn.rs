//! Scenario 1 from the paper (§4.1): Alice negotiates a course discount
//! with E-Learn Associates.
//!
//! The full cast: E-Learn (with ELENA's cached signed rule and a BBB
//! membership), Alice (registrar-issued student ID + UIUC's delegation
//! rule + a BBB-guarded release policy), and UIUC/registrar peers that —
//! per the paper — are never contacted at run time.
//!
//! The example runs the negotiation under both strategies, then the whole
//! ablation study: removing any single ingredient makes it fail.
//!
//! Run with: `cargo run --example alice_elearn`

use peertrust::negotiation::{verify_safe_sequence, DisclosedItem, Strategy};
use peertrust::scenarios::{Ablation1, Scenario1};

fn main() {
    println!("=== Scenario 1: Alice & E-Learn (paper §4.1) ===\n");

    for strategy in Strategy::ALL {
        let mut scenario = Scenario1::build();
        let outcome = scenario.run(strategy);
        println!("--- strategy: {strategy} ---");
        println!("success:      {}", outcome.success);
        println!("granted:      {}", outcome.granted[0]);
        println!("messages:     {}", outcome.messages);
        println!("queries:      {}", outcome.queries);
        println!("credentials:  {}", outcome.credential_count());
        println!("disclosures:");
        for d in &outcome.disclosures {
            match &d.item {
                DisclosedItem::SignedRule(sr) => {
                    println!(
                        "  #{:<2} {:>8} -> {:<8} credential  {}",
                        d.seq, d.from, d.to, sr.rule
                    )
                }
                DisclosedItem::Answer(a) => {
                    println!(
                        "  #{:<2} {:>8} -> {:<8} answer      {}",
                        d.seq, d.from, d.to, a
                    )
                }
                DisclosedItem::Resource(r) => {
                    println!(
                        "  #{:<2} {:>8} -> {:<8} RESOURCE    {}",
                        d.seq, d.from, d.to, r
                    )
                }
                DisclosedItem::Policy(_) => {
                    println!("  #{:<2} {:>8} -> {:<8} policy", d.seq, d.from, d.to)
                }
            }
        }
        verify_safe_sequence(&outcome).expect("safe sequence");
        assert!(outcome.success);
        println!();
    }

    println!("--- ablation study (each missing ingredient must break it) ---");
    for ablation in Ablation1::ALL {
        if ablation == Ablation1::None {
            continue;
        }
        let mut scenario = Scenario1::build_ablated(ablation);
        let outcome = scenario.run(Strategy::Parsimonious);
        println!(
            "{:22} -> success={} (refusals: {})",
            format!("{ablation:?}"),
            outcome.success,
            outcome.refusals.len()
        );
        assert!(!outcome.success);
    }
    println!("\nall ablations fail as the paper predicts.");
}
