//! Quickstart: a complete bilateral trust negotiation in ~60 lines.
//!
//! A learning server grants `resource(X)` to UIUC students; Alice holds a
//! UIUC-signed student credential but releases it only to requesters that
//! prove Better-Business-Bureau membership. The negotiation therefore
//! takes two counter-disclosures before access is granted.
//!
//! Run with: `cargo run --example quickstart`

use peertrust::core::PeerId;
use peertrust::crypto::KeyRegistry;
use peertrust::negotiation::{verify_safe_sequence, NegotiationPeer, PeerMap, Strategy};
use peertrust::net::{NegotiationId, SimNetwork};
use peertrust::parser::parse_literal;

fn main() {
    // 1. A shared key registry plays the role of the CA infrastructure.
    let registry = KeyRegistry::new();
    registry.register_derived(PeerId::new("UIUC"), 1);
    registry.register_derived(PeerId::new("BBB"), 2);

    // 2. Each peer loads its policies and credentials in the PeerTrust
    //    language (paper §3.1 syntax).
    let mut peers = PeerMap::new();

    let mut server = NegotiationPeer::new("E-Learn", registry.clone());
    server
        .load_program(
            r#"
            % The resource policy: open to UIUC students, who prove their
            % status themselves (note the nested authority @ X).
            resource(X) $ true <- student(X) @ "UIUC" @ X.

            % E-Learn's BBB membership credential, publicly releasable.
            member("E-Learn") @ "BBB" $ true signedBy ["BBB"].
            "#,
        )
        .expect("server policies parse");
    peers.insert(server);

    let mut alice = NegotiationPeer::new("Alice", registry);
    alice
        .load_program(
            r#"
            % Alice's student ID, issued (signed) by UIUC.
            student("Alice") @ "UIUC" signedBy ["UIUC"].

            % Her release policy: student credentials go only to BBB
            % members, and the requester must prove membership itself.
            student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-_true
                student(X) @ Y.
            "#,
        )
        .expect("alice policies parse");
    peers.insert(alice);

    // 3. Run the negotiation over a simulated network.
    let mut net = SimNetwork::new(42).with_trace();
    let outcome = Strategy::Parsimonious.run(
        &mut peers,
        &mut net,
        NegotiationId(1),
        PeerId::new("Alice"),
        PeerId::new("E-Learn"),
        parse_literal(r#"resource("Alice")"#).unwrap(),
    );

    // 4. Inspect the result.
    println!("success:   {}", outcome.success);
    println!(
        "granted:   {:?}",
        outcome
            .granted
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    println!("messages:  {}", outcome.messages);
    println!("bytes:     {}", outcome.bytes);
    println!();
    println!("disclosure sequence (C1, ..., Ck, R):");
    for d in &outcome.disclosures {
        println!(
            "  #{:<2} {:>8} -> {:<8} {}",
            d.seq,
            d.from,
            d.to,
            d.item.kind()
        );
    }
    println!();
    println!("network trace:");
    for ev in net.trace() {
        println!("  t{:<3} {}", ev.at, ev.message);
    }

    // 5. The safety invariant holds: every disclosure's policy was
    //    satisfied by earlier disclosures.
    verify_safe_sequence(&outcome).expect("disclosure sequence is safe");
    println!("\nsafe-sequence invariant verified.");
    assert!(outcome.success);
}
