//! The grid/handheld delegation scenario (paper §4.2, closing paragraph):
//! Bob's underpowered device forwards negotiation work to his trusted
//! home peer, which holds the credentials and releases them only to Bob's
//! own devices.
//!
//! Run with: `cargo run --example grid_delegation`

use peertrust::core::PeerId;
use peertrust::negotiation::{verify_safe_sequence, Strategy};
use peertrust::scenarios::GridScenario;

fn main() {
    println!("=== Grid delegation: handheld -> home peer (paper §4.2) ===\n");

    let mut scenario = GridScenario::build();
    let outcome = scenario.run(Strategy::Parsimonious);

    println!("success:  {}", outcome.success);
    println!("messages: {}", outcome.messages);
    println!("flow:");
    for d in &outcome.disclosures {
        println!(
            "  #{:<2} {:>12} -> {:<12} {}",
            d.seq,
            d.from,
            d.to,
            d.item.kind()
        );
    }
    verify_safe_sequence(&outcome).expect("safe sequence");
    assert!(outcome.success);

    // The credential travelled home -> handheld -> service, never directly.
    let home = PeerId::new("Bob-Home");
    let service = PeerId::new("GridService");
    assert!(outcome
        .disclosures
        .iter()
        .all(|d| !(d.from == home && d.to == service)));
    println!("\nno direct home->service disclosure: the handheld mediated everything.");

    // Offline home peer: negotiation must fail.
    let mut offline = GridScenario::build_with(false);
    let failed = offline.run(Strategy::Parsimonious);
    println!("home peer offline: success={}", failed.success);
    assert!(!failed.success);
}
