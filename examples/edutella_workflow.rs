//! The full Edutella workflow in one program (paper §1 + §3.1 + §6):
//!
//! 1. course providers publish **RDF metadata**, imported into their
//!    knowledge bases;
//! 2. the **super-peer routing layer** discovers who offers the course
//!    Alice wants;
//! 3. a **trust negotiation** establishes access (bilateral disclosure);
//! 4. the provider issues a **nontransferable access token**, so repeat
//!    visits need no renegotiation;
//! 5. everything lands in a **tamper-evident audit trail**.
//!
//! Run with: `cargo run --example edutella_workflow`

use peertrust::core::{PeerId, Sym};
use peertrust::crypto::{KeyRegistry, RevocationList};
use peertrust::negotiation::{
    issue_ticket, negotiate, redeem_ticket, AuditLog, NegotiationPeer, PeerMap, SessionConfig,
};
use peertrust::net::{NegotiationId, SimNetwork, SuperPeerNetwork};
use peertrust::parser::parse_literal;
use peertrust::rdf::{import_metadata, parse_ntriples, TripleStore};

const CATALOG: &str = r#"
<http://elearn.example/courses/spanish101> <http://elearn.example/terms#subject> "spanish" .
<http://elearn.example/courses/spanish101> <http://elearn.example/terms#level> "beginner" .
<http://elearn.example/catalog> <http://elearn.example/terms#peertrustPolicy> "offersSpanish(C) <- subject(C, \"spanish\")." .
"#;

fn main() {
    println!("=== Edutella workflow: metadata -> discovery -> negotiation -> token ===\n");

    // --- Setup: registry, peers, metadata. ---
    let registry = KeyRegistry::new();
    registry.register_derived(PeerId::new("UIUC"), 1);
    registry.register_derived(PeerId::new("BBB"), 2);
    registry.register_derived(PeerId::new("E-Learn"), 3);

    let mut peers = PeerMap::new();
    let mut elearn = NegotiationPeer::new("E-Learn", registry.clone());
    let store: TripleStore = parse_ntriples(CATALOG).unwrap().into_iter().collect();
    let imported = import_metadata(&store, &mut elearn.kb).unwrap();
    println!("1. E-Learn imported {imported} rules from its RDF catalog");
    elearn
        .load_program(
            r#"
            enroll(C, X) $ true <- offersSpanish(C), student(X) @ "UIUC" @ X.
            member("E-Learn") @ "BBB" $ true signedBy ["BBB"].
            "#,
        )
        .unwrap();
    peers.insert(elearn);

    let mut alice = NegotiationPeer::new("Alice", registry.clone());
    alice
        .load_program(
            r#"
            student("Alice") @ "UIUC" signedBy ["UIUC"].
            student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-_true student(X) @ Y.
            "#,
        )
        .unwrap();
    peers.insert(alice);

    // --- Discovery over the super-peer backbone. ---
    let mut spn = SuperPeerNetwork::new([PeerId::new("SP1"), PeerId::new("SP2")]);
    spn.attach(PeerId::new("E-Learn"), PeerId::new("SP2"));
    spn.attach(PeerId::new("Alice"), PeerId::new("SP1"));
    spn.advertise(PeerId::new("E-Learn"), Sym::new("enroll"));
    let lookup = spn.lookup(PeerId::new("Alice"), Sym::new("enroll"), true);
    println!(
        "2. discovery: providers of `enroll` = {:?} ({} backbone hops)",
        lookup.providers, lookup.hops
    );
    let provider = lookup.providers[0];

    // --- Negotiation. ---
    let mut net = SimNetwork::new(99);
    let goal = parse_literal(r#"enroll(C, "Alice")"#).unwrap();
    let outcome = negotiate(
        &mut peers,
        &mut net,
        SessionConfig::default(),
        NegotiationId(1),
        PeerId::new("Alice"),
        provider,
        goal,
    );
    println!(
        "3. negotiation: success={} granted={:?} messages={}",
        outcome.success,
        outcome
            .granted
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>(),
        outcome.messages
    );
    assert!(outcome.success);

    // --- Token issuance & repeat access. ---
    let revocations = RevocationList::new();
    let elearn_ref = peers.get(provider).unwrap();
    let ticket = issue_ticket(elearn_ref, &outcome, 1, 500).unwrap();
    let resource = outcome.granted[0].clone();
    for visit in 1..=3u32 {
        redeem_ticket(
            elearn_ref,
            &revocations,
            &ticket,
            PeerId::new("Alice"),
            &resource,
            u64::from(visit) * 10,
        )
        .unwrap();
    }
    println!("4. token: 3 repeat visits redeemed with zero messages");

    // --- Audit trail. ---
    let mut audit = AuditLog::new();
    audit.record(net.now(), outcome);
    audit.verify_chain().unwrap();
    let (ok, fail) = audit.stats();
    println!(
        "5. audit: {} record(s), chain verified ({ok} success / {fail} failure)",
        audit.len()
    );

    println!("\nworkflow complete.");
}
