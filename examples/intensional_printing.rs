//! Intensional, content-triggered access policies (paper §6's closing
//! direction): one policy rule covers "color printers on the third floor"
//! as a query over printer attributes, and document fetches trigger a
//! clearance negotiation only when the document is classified.
//!
//! Run with: `cargo run --example intensional_printing`

use peertrust::core::Term;
use peertrust::scenarios::IntensionalScenario;

fn main() {
    println!("=== Intensional & content-triggered policies (paper §6) ===\n");

    // Who can print where?
    for (who, printer, expect) in [
        ("Staffer", "eng3a", true), // 3rd-floor color: staff only
        ("Guest", "eng3a", false),
        ("Guest", "eng3m", true),  // monochrome: open
        ("Guest", "lobby1", true), // first floor: open
    ] {
        let mut s = IntensionalScenario::build();
        let out = s.run(who, IntensionalScenario::print_goal(printer, who));
        println!(
            "print({printer}) as {who:8}: {} (credentials disclosed: {})",
            if out.success { "GRANTED" } else { "DENIED " },
            out.credential_count()
        );
        assert_eq!(out.success, expect);
    }

    // Content-triggered fetches.
    println!();
    for (who, doc, expect) in [
        ("Guest", "newsletter", true),   // public: no negotiation
        ("Guest", "budget2026", false),  // classified: guest lacks clearance
        ("Staffer", "budget2026", true), // classified: clearance negotiated
    ] {
        let mut s = IntensionalScenario::build();
        let out = s.run(who, IntensionalScenario::fetch_goal(doc, who));
        println!(
            "fetch({doc}) as {who:8}: {} (queries: {}, credentials: {})",
            if out.success { "GRANTED" } else { "DENIED " },
            out.queries,
            out.credential_count()
        );
        assert_eq!(out.success, expect);
    }

    // The intensional family, enumerated per requester.
    println!();
    let mut s = IntensionalScenario::build();
    let out = s.run(
        "Guest",
        peertrust::core::Literal::new("print", vec![Term::var("P"), Term::str("Guest")]),
    );
    let printers: Vec<String> = out.granted.iter().map(|g| g.args[0].to_string()).collect();
    println!("printers available to Guest: {printers:?}");
    assert!(!printers.contains(&"eng3a".to_string()));

    println!("\nintensional policies behave per the paper's sketch.");
}
