//! Scenario 2 from the paper (§4.2): Bob buys learning services.
//!
//! Exercises every variant the paper sketches:
//!
//! * free courses for ELENA-member employees (with the privileged
//!   `freebieEligible` definition kept private via its rule context);
//! * pay-per-use courses needing a purchase authorization (`Price < 2000`
//!   inside a signed rule!) and the company VISA card, whose very
//!   existence Bob only discusses under `policy27`;
//! * the VISA revocation check (`purchaseApproved @ "VISA"`);
//! * run-time authority instantiation from a local authority database and
//!   from a broker peer;
//! * UniPro policy disclosure: IBM asks E-Learn for `policy49`'s
//!   definition, which is guarded by `policy27`.
//!
//! Run with: `cargo run --example course_marketplace`

use peertrust::core::{PeerId, Sym};
use peertrust::negotiation::{request_policy, Strategy};
use peertrust::net::{NegotiationId, SimNetwork};
use peertrust::scenarios::{Ablation2, Scenario2, Variant2};

fn main() {
    println!("=== Scenario 2: Bob & learning services (paper §4.2) ===\n");

    // Free course.
    let mut s = Scenario2::build(Variant2::Base);
    let free = s.run(Strategy::Parsimonious, Scenario2::free_goal());
    println!(
        "free course (cs101):   success={} messages={} creds={}",
        free.success,
        free.messages,
        free.credential_count()
    );
    println!("  grant: {}", free.granted[0]);
    assert!(free.success);

    // Pay-per-use.
    let mut s = Scenario2::build(Variant2::Base);
    let paid = s.run(Strategy::Parsimonious, Scenario2::paid_goal(1000));
    println!(
        "paid course (cs411):   success={} messages={} creds={}",
        paid.success,
        paid.messages,
        paid.credential_count()
    );
    assert!(paid.success);

    // Revocation check, card in good standing vs revoked.
    let mut ok = Scenario2::build(Variant2::RevocationCheck);
    let approved = ok.run(Strategy::Parsimonious, Scenario2::paid_goal(1000));
    println!("revocation check OK:   success={}", approved.success);
    assert!(approved.success);

    let mut revoked = Scenario2::build_ablated(Variant2::RevocationCheck, Ablation2::CardRevoked);
    let blocked = revoked.run(Strategy::Parsimonious, Scenario2::paid_goal(1000));
    println!(
        "revoked card:          success={} (CRL agrees: {:?})",
        blocked.success,
        revoked.card_check(5).err().map(|e| e.to_string())
    );
    assert!(!blocked.success);

    // Authority database & broker variants.
    for variant in [Variant2::AuthorityDb, Variant2::Broker] {
        let mut s = Scenario2::build(variant);
        let out = s.run(Strategy::Parsimonious, Scenario2::paid_goal(1000));
        println!(
            "{variant:?}:          success={} messages={}",
            out.success, out.messages
        );
        assert!(out.success);
    }

    // The paper's counterfactual: IBM not an ELENA member.
    let mut s = Scenario2::build_ablated(Variant2::Base, Ablation2::IbmNotElenaMember);
    let free2 = s.run(Strategy::Parsimonious, Scenario2::free_goal());
    let mut s = Scenario2::build_ablated(Variant2::Base, Ablation2::IbmNotElenaMember);
    let paid2 = s.run(Strategy::Parsimonious, Scenario2::paid_goal(1000));
    println!("IBM not ELENA member:  free={} paid={} (paper: \"IBM employees would not be\neligible for free courses, but Bob would be able to purchase courses\")",
        free2.success, paid2.success);
    assert!(!free2.success && paid2.success);

    // Price above Bob's authority.
    let mut s = Scenario2::build_ablated(Variant2::Base, Ablation2::PriceTooHigh);
    let expensive = s.run(Strategy::Parsimonious, Scenario2::paid_goal(2500));
    println!("price $2500 > $2000:   success={}", expensive.success);
    assert!(!expensive.success);

    // UniPro: ask for policy definitions.
    println!("\n--- UniPro policy protection ---");
    let mut s = Scenario2::build(Variant2::Base);
    let mut net = SimNetwork::new(7);
    let refused = request_policy(
        &mut s.peers,
        &mut net,
        NegotiationId(50),
        PeerId::new("Bob"),
        PeerId::new("E-Learn"),
        Sym::new("freebieEligible"),
    );
    println!(
        "freebieEligible definition for Bob: {} rules (privileged -> refused)",
        refused.rules.len()
    );
    assert!(refused.rules.is_empty());

    let disclosed = request_policy(
        &mut s.peers,
        &mut net,
        NegotiationId(51),
        PeerId::new("Bob"),
        PeerId::new("E-Learn"),
        Sym::new("policy49"),
    );
    println!(
        "policy49 definition for Bob before negotiation: {} rules",
        disclosed.rules.len()
    );

    println!("\nscenario 2 complete.");
}
