//! Eager vs parsimonious on synthetic policy graphs: the trade-off table
//! behind experiments E3/E4 (messages and rounds vs disclosures).
//!
//! Run with: `cargo run --release --example strategy_comparison`

use peertrust::negotiation::Strategy;
use peertrust::net::{NegotiationId, SimNetwork};
use peertrust::scenarios::{chain, random_policies, RandomPolicyConfig};

fn main() {
    println!("=== Release-dependency chains (experiment E3) ===");
    println!(
        "{:>6} | {:>12} {:>9} {:>7} | {:>12} {:>9} {:>7}",
        "depth", "pars msgs", "creds", "ticks", "eager msgs", "creds", "rounds"
    );
    for depth in [1, 2, 4, 8, 12, 16] {
        let mut row = Vec::new();
        for strategy in Strategy::ALL {
            let mut w = chain(depth);
            let mut net = SimNetwork::new(depth as u64);
            let out = strategy.run(
                &mut w.peers,
                &mut net,
                NegotiationId(1),
                w.requester,
                w.responder,
                w.goal.clone(),
            );
            assert!(out.success, "depth {depth} {strategy}");
            row.push(out);
        }
        println!(
            "{:>6} | {:>12} {:>9} {:>7} | {:>12} {:>9} {:>7}",
            depth,
            row[0].messages,
            row[0].credential_count(),
            row[0].elapsed_ticks,
            row[1].messages,
            row[1].credential_count(),
            row[1].rounds
        );
    }

    println!("\n=== Random bipartite policy graphs (experiment E4) ===");
    println!(
        "{:>5} {:>5} | {:>10} {:>10} | {:>10} {:>10} | {:>9}",
        "n", "seed", "pars msgs", "pars creds", "eager msgs", "eager creds", "outcome"
    );
    let mut eager_total = 0u64;
    let mut pars_total = 0u64;
    for n in [4usize, 8, 16] {
        for seed in 0..4u64 {
            let cfg = RandomPolicyConfig {
                creds_per_side: n,
                max_deps: 2,
                public_prob: 0.3,
                allow_cycles: true,
                seed,
                ..RandomPolicyConfig::default()
            };
            let mut outs = Vec::new();
            for strategy in Strategy::ALL {
                let mut w = random_policies(cfg);
                let mut net = SimNetwork::new(seed);
                let out = strategy.run(
                    &mut w.peers,
                    &mut net,
                    NegotiationId(1),
                    w.requester,
                    w.responder,
                    w.goal.clone(),
                );
                outs.push((out, w.satisfiable));
            }
            let (pars, sat) = (&outs[0].0, outs[0].1);
            let eager = &outs[1].0;
            // Eager is complete: success == satisfiable.
            assert_eq!(eager.success, sat);
            pars_total += pars.credential_count() as u64;
            eager_total += eager.credential_count() as u64;
            println!(
                "{:>5} {:>5} | {:>10} {:>10} | {:>10} {:>10} | {:>9}",
                n,
                seed,
                pars.messages,
                pars.credential_count(),
                eager.messages,
                eager.credential_count(),
                if sat { "sat" } else { "unsat" }
            );
        }
    }
    println!(
        "\ntotal credentials disclosed: parsimonious={pars_total}, eager={eager_total} \
         (parsimonious discloses less; eager always decides satisfiability)"
    );
    assert!(pars_total <= eager_total);
}
